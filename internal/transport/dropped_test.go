package transport_test

import (
	"testing"

	"repro/internal/channet"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// TestDroppedCountingPoint pins the normalized Dropped accounting every
// backend must follow: a message is counted at the earliest point the
// backend knows its target is dead — at RemoveNode for messages already
// queued, at send time afterwards — and timers are never counted. The
// same script must produce identical Dropped/Pending readings on every
// backend at every observation point, not merely the same final total.
func TestDroppedCountingPoint(t *testing.T) {
	backends := []struct {
		name string
		make func() transport.Transport
	}{
		{"simnet", func() transport.Transport { return simnet.New() }},
		{"channet", func() transport.Transport { return channet.New() }},
		{"channet-seeded", func() transport.Transport { return channet.NewSeeded(1) }},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			n := b.make()
			noop := func(transport.Endpoint, transport.Message) {}
			n.AddNode(1, noop)
			n.AddNode(2, noop)

			// Queued message to a node that then dies: counted at
			// RemoveNode, and gone from Pending at the same moment.
			n.Send(1, 2, "queued", 1)
			n.RemoveNode(2)
			if got := n.Dropped(); got != 1 {
				t.Fatalf("Dropped after RemoveNode = %d, want 1 (eager count of queued message)", got)
			}
			if got := n.Pending(); got != 0 {
				t.Fatalf("Pending after RemoveNode = %d, want 0 (purged, not lingering)", got)
			}

			// Send to an already-dead target: counted at send.
			n.Send(1, 2, "late", 1)
			if got := n.Dropped(); got != 2 {
				t.Fatalf("Dropped after send-to-dead = %d, want 2 (counted at send)", got)
			}
			if got := n.Pending(); got != 0 {
				t.Fatalf("Pending after send-to-dead = %d, want 0", got)
			}

			// A dead node's armed timers are purged uncounted.
			n.SendTimer(1, "tick", 3)
			if got := n.Pending(); got != 1 {
				t.Fatalf("Pending with armed timer = %d, want 1", got)
			}
			n.RemoveNode(1)
			if got := n.Dropped(); got != 2 {
				t.Fatalf("Dropped after timer purge = %d, want 2 (timers never count)", got)
			}
			if got := n.Pending(); got != 0 {
				t.Fatalf("Pending after timer purge = %d, want 0", got)
			}

			// Nothing left: stepping delivers nothing and counts nothing.
			if d := n.Step(); d != 0 {
				t.Fatalf("Step on drained net delivered %d, want 0", d)
			}
			if got := n.Dropped(); got != 2 {
				t.Fatalf("Dropped after Step = %d, want 2", got)
			}
		})
	}
}
