// Package transport defines the message-passing substrate the
// distributed Forgiving Graph protocol runs on, abstracted away from
// any particular scheduler.
//
// The protocol (internal/dist) is self-synchronizing: every phase of a
// repair proves its own termination in-band by message counting, so the
// only services a processor needs from the network are
//
//   - Send: asynchronous reliable FIFO-per-edge unicast, and
//   - SendTimer: a local wake-up after a delay measured on a clock that
//     advances at least as fast as message delivery.
//
// Everything else — global rounds, bandwidth caps, congestion — is a
// property of one particular implementation, not of the protocol.
// Package simnet implements Transport as a deterministic synchronous-
// round simulator (the measurement oracle); package channet implements
// it with one goroutine per processor over Go channels and per-
// processor logical clocks (the real-concurrency adversarial
// scheduler). The differential tests in internal/dist assert that the
// two backends heal bit-identically on the same op schedule.
//
// # Contract
//
// An implementation must provide, per directed edge, reliable exactly-
// once FIFO delivery: two messages sent X→Y are handed to Y's handler
// in send order. No ordering is promised across different edges.
// Messages to unregistered (dead) processors are dropped at delivery
// time and counted by Dropped. Handlers run one-at-a-time per
// processor, and only ever touch their own processor's state, so an
// implementation is free to run different processors' handlers
// concurrently.
//
// Timers scheduled by SendTimer fire no earlier than `delay` ticks of
// the owning processor's clock. In simnet that clock is the global
// round counter; in channet it is a per-processor Lamport clock that
// advances on every message the processor receives. The protocol uses
// timers only to *initiate* checks (watchdogs, repair kickoff) — never
// to conclude that something did NOT happen — so slower clocks are
// always safe, merely slower.
//
// # Two planes
//
// The driver surface is split in two. The data plane (Plane) is what
// handlers and lifecycle management see: Send/SendTimer, node
// add/remove, introspection, bandwidth. The control plane is how
// delivery is driven, and it comes in two flavors: synchronous
// backends implement Transport (Plane + Step, the frozen-world pulse
// contract), while asynchronous backends — where traffic moves on real
// links and no global freeze exists — implement Driver (Plane + Drive
// + quiescence notifications + safe-point requests, see driver.go).
// NewDriver adapts any Transport into a Driver, so the dist driver
// loop speaks only the async contract and the entire existing
// simnet/channet test suite runs unmodified behind the shim.
package transport

import "repro/internal/graph"

// NodeID identifies a processor, shared with package graph.
type NodeID = graph.NodeID

// Class tags a message with its role in the protocol, so the cost of
// coordination — leader election and termination detection — is
// accounted separately from the repair payload it synchronizes. All
// classes are real network traffic and count fully toward Messages and
// TotalWords; the class only drives the ElectionRounds/SyncRounds
// breakdown in Stats.
type Class uint8

const (
	// ClassData is ordinary protocol traffic (the default).
	ClassData Class = iota
	// ClassElection marks leader-election tournament messages.
	ClassElection
	// ClassSync marks termination-detection traffic: walk acks,
	// convergecast dones, and phase-completion reports.
	ClassSync
	// ClassAudit marks the self-stabilizing audit layer's background
	// traffic: checksum probes, claim checks, and their replies. Audit
	// traffic is charged like everything else; the class exists so the
	// clean-run audit tax is measurable (and CI-gated) separately.
	ClassAudit
)

// Message is a unit of communication between two processors.
type Message struct {
	From, To NodeID
	// Payload is the protocol-level content.
	Payload any
	// Words is the message size in words of O(log n) bits, the unit
	// Lemma 4 counts. Timers have Words == 0 and are excluded from the
	// traffic statistics.
	Words int
	// Class is the accounting category (see Class).
	Class Class
	// Timer marks a local wake-up rather than a network message.
	Timer bool
	// Seq is the implementation's send sequence number; it breaks ties
	// deterministically when an implementation needs a total delivery
	// order. Handlers must not interpret it.
	Seq int
}

// Handler is the per-processor message handler. It may call Send,
// SendClass, SendTimer and the read-only accessors on the Endpoint it
// is passed, but must not call Step, and must touch only its own
// processor's state (plus explicitly synchronized driver structures).
type Handler func(n Endpoint, msg Message)

// Stats aggregates traffic since the last ResetStats. Congestion
// counters (QueuedWords, MaxEdgeBacklog, CongestionRounds) are only
// meaningful on backends with a bandwidth model and stay zero
// elsewhere.
type Stats struct {
	// Messages is the number of network messages delivered.
	Messages int
	// Rounds is the number of Step pulses in which at least one message
	// or timer was delivered.
	Rounds int
	// TotalWords sums the sizes of all delivered network messages.
	TotalWords int
	// MaxWords is the largest single message size seen.
	MaxWords int
	// MaxSentByNode is the largest number of messages sent by a single
	// processor (the paper's "communication per node" metric counts
	// bits; multiply by MaxWords for a bound).
	MaxSentByNode int
	// QueuedWords accumulates, per round, the words deferred by the
	// per-edge bandwidth limit; a message stuck behind a full edge for
	// k rounds contributes k times its size, so the counter weights
	// backlog by how long it lingered.
	QueuedWords int
	// MaxEdgeBacklog is the largest number of words left queued on a
	// single edge at any round boundary — the hotspot depth.
	MaxEdgeBacklog int
	// CongestionRounds counts rounds in which at least one message was
	// deferred for lack of bandwidth.
	CongestionRounds int
	// ElectionMessages and SyncMessages split the Messages total by
	// class: leader-election tournament traffic and termination-
	// detection traffic (walk acks, convergecast dones). Both are
	// included in Messages/TotalWords — coordination is not free.
	ElectionMessages int
	SyncMessages     int
	// ElectionRounds and SyncRounds count pulses in which at least one
	// message of the respective class was delivered. A pulse carrying
	// both classes counts in both.
	ElectionRounds int
	SyncRounds     int
	// AuditMessages counts delivered background-audit messages
	// (ClassAudit), and AuditRounds the pulses that carried at least one
	// of them — the standing cost of the self-stabilizing audit layer.
	AuditMessages int
	AuditRounds   int
}

// Endpoint is the narrow interface handlers (and the driver's message-
// injection paths) use to originate traffic. Both Transport
// implementations and simnet's per-round shadow networks satisfy it.
type Endpoint interface {
	// Send enqueues a message for asynchronous delivery. Words must
	// reflect the payload size in O(log n)-bit words and be at least 1.
	Send(from, to NodeID, payload any, words int)
	// SendClass is Send with an explicit accounting class.
	SendClass(from, to NodeID, payload any, words int, class Class)
	// SendTimer schedules a local wake-up for the sending processor
	// after delay ticks of its clock (delay >= 1). Timers do not count
	// as network traffic.
	SendTimer(node NodeID, payload any, delay int)
	// EdgeBudget returns the effective words-per-delivery-opportunity
	// cap of one directed edge, 0 meaning unlimited. Sender-side pacing
	// consults it; backends without a bandwidth model return 0.
	EdgeBudget(from, to NodeID) int
	// Round returns a monotone pulse counter: the number of Step calls
	// on simnet, the macro-pulse count on channet. Only differences are
	// meaningful, and only for coarse latency accounting.
	Round() int
}

// Plane is the data-plane surface of a substrate: everything a driver
// needs except pulse scheduling. It is the part of the contract shared
// by the synchronous in-process backends (simnet, channet) and the
// asynchronous wire backend — Endpoint plus processor lifecycle,
// introspection, and the (optional) bandwidth model. How delivery is
// *driven* is deliberately absent: synchronous backends add Step
// (Transport), asynchronous ones add the control plane (Driver).
type Plane interface {
	Endpoint

	// AddNode registers a processor. Re-registering replaces the
	// handler. Must only be called between Steps.
	AddNode(id NodeID, h Handler)
	// RemoveNode unregisters a processor (the node is dead). Every
	// message addressed to it — already queued or sent later — is
	// dropped and counted by Dropped at the earliest point the backend
	// knows the target is dead: at RemoveNode for messages already
	// queued, at send time afterwards. The dead node's armed timers are
	// discarded without being counted: timers are local wake-ups, not
	// network traffic. Must only be called between Steps.
	RemoveNode(id NodeID)
	// HasNode reports whether a processor is registered.
	HasNode(id NodeID) bool

	// Pending reports how many messages and timers are waiting for
	// delivery.
	Pending() int
	// PendingWords sums the sizes of all waiting network messages
	// (timers are free and count 0).
	PendingWords() int
	// DropPending discards every queued message and timer without
	// delivering them, returning how many were dropped.
	DropPending() int
	// Dropped returns the number of messages addressed to dead
	// processors.
	Dropped() int

	// Stats returns a copy of the traffic statistics accumulated since
	// the last ResetStats.
	Stats() Stats
	// ResetStats zeroes the traffic statistics.
	ResetStats()

	// SetBandwidth caps every edge at the given number of message-words
	// per delivery opportunity; 0 restores unlimited delivery. Backends
	// without a bandwidth model accept only 0 and panic otherwise —
	// congestion experiments are simnet-only (see EXPERIMENTS.md).
	SetBandwidth(words int)
	// SetEdgeBandwidth overrides the capacity of one directed edge;
	// words <= 0 removes the override.
	SetEdgeBandwidth(from, to NodeID, words int)
	// SetNodeBandwidth caps every link incident to one node; words <= 0
	// removes the cap.
	SetNodeBandwidth(id NodeID, words int)
	// Bandwidth returns the global per-edge cap (0 = unlimited).
	Bandwidth() int
}

// Transport is a synchronous substrate: a Plane driven in frozen-world
// pulses. Between two Step calls no handler is running and no handler
// will run, so the driver may freely inspect processor state, add or
// remove nodes, and inject messages. How much work one Step performs
// is implementation-defined (simnet: exactly one synchronous round;
// channet: all currently deliverable traffic plus at most one timer
// epoch); drivers must only rely on "repeated Step eventually drains
// Pending".
type Transport interface {
	Plane

	// Step delivers some implementation-defined, nonempty-if-possible
	// amount of pending traffic and returns the number of deliveries
	// performed. Repeatedly calling Step drains Pending to zero in
	// finite pulses for any terminating protocol.
	Step() int
}

// ParallelStepper is implemented by transports that offer an
// observationally-identical concurrent variant of Step (simnet's
// shadow-network ParallelStep). The dist driver type-asserts for it
// when parallel mode is requested.
type ParallelStepper interface {
	ParallelStep() int
}
