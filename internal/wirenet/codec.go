package wirenet

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sort"
)

// Payload codec: a compact reflection-driven binary encoding for the
// protocol's O(1)-word message structs. The protocol deliberately
// restricts payloads to flat structs of integer scalars and nested
// integer structs (IDs, counts, addresses, slots) — exactly what the
// paper's word-accounting charges for — so the codec supports nothing
// else: signed integers as zigzag varints, unsigned integers as
// varints, nested structs recursively, in field order. No field names
// or type metadata cross the wire; the one-byte registry tag picks the
// Go type on decode, which keeps a typical message under two dozen
// bytes.
//
// Types are registered from init() (see internal/dist's wirecodec.go),
// before any Hub exists, so the registry is read-only at runtime and
// needs no locking. Hub and workers share the binary, hence the
// registry — workers never decode payloads (they route them opaquely),
// but the symmetry costs nothing.

var (
	codecByTag  = map[byte]reflect.Type{}
	codecByType = map[reflect.Type]byte{}
)

// RegisterPayload maps a frame tag to a payload struct type. Both
// directions must be unique; sample must be a struct whose (exported)
// fields are integers or structs of the same shape, recursively. Call
// from init().
func RegisterPayload(tag byte, sample any) {
	t := reflect.TypeOf(sample)
	if t == nil || t.Kind() != reflect.Struct {
		panic(fmt.Sprintf("wirenet: RegisterPayload(%d): sample must be a struct, got %T", tag, sample))
	}
	if prev, dup := codecByTag[tag]; dup {
		panic(fmt.Sprintf("wirenet: payload tag %d already registered to %v", tag, prev))
	}
	if prev, dup := codecByType[t]; dup {
		panic(fmt.Sprintf("wirenet: payload type %v already registered as tag %d", t, prev))
	}
	if err := checkCodecType(t); err != nil {
		panic(fmt.Sprintf("wirenet: RegisterPayload(%d, %v): %v", tag, t, err))
	}
	codecByTag[tag] = t
	codecByType[t] = tag
}

// RegisteredPayloads returns the registered tags in ascending order
// (for the codec round-trip tests).
func RegisteredPayloads() []byte {
	tags := make([]byte, 0, len(codecByTag))
	for tag := range codecByTag {
		tags = append(tags, tag)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}

// SamplePayload returns a zero value of the payload type registered
// under tag (test helper).
func SamplePayload(tag byte) (any, bool) {
	t, ok := codecByTag[tag]
	if !ok {
		return nil, false
	}
	return reflect.New(t).Elem().Interface(), true
}

// checkCodecType verifies at registration time that every field is
// encodable, so Send never discovers an unsupported shape mid-run.
func checkCodecType(t reflect.Type) error {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			return fmt.Errorf("field %s is unexported", f.Name)
		}
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		case reflect.Struct:
			if err := checkCodecType(f.Type); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		default:
			return fmt.Errorf("field %s has unsupported kind %v", f.Name, f.Type.Kind())
		}
	}
	return nil
}

// encodePayload appends tag + field encoding of p.
func encodePayload(buf []byte, p any) ([]byte, error) {
	v := reflect.ValueOf(p)
	tag, ok := codecByType[v.Type()]
	if !ok {
		return nil, fmt.Errorf("wirenet: unregistered payload type %T", p)
	}
	buf = append(buf, tag)
	return encodeValue(buf, v), nil
}

func encodeValue(buf []byte, v reflect.Value) []byte {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.AppendVarint(buf, v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return binary.AppendUvarint(buf, v.Uint())
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			buf = encodeValue(buf, v.Field(i))
		}
		return buf
	default:
		// Unreachable: shapes are validated at registration.
		panic(fmt.Sprintf("wirenet: unencodable kind %v", v.Kind()))
	}
}

// decodePayload decodes one tag-prefixed payload back into its
// registered Go type (returned as a struct value, matching how the
// protocol sends payloads).
func decodePayload(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("wirenet: empty payload")
	}
	t, ok := codecByTag[data[0]]
	if !ok {
		return nil, fmt.Errorf("wirenet: unknown payload tag %d", data[0])
	}
	v := reflect.New(t).Elem()
	d := decoder{data: data, off: 1}
	decodeValue(&d, v)
	if d.err != nil {
		return nil, fmt.Errorf("wirenet: decoding %v: %w", t, d.err)
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("wirenet: %d trailing bytes after %v", len(data)-d.off, t)
	}
	return v.Interface(), nil
}

func decodeValue(d *decoder, v reflect.Value) {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(d.varint())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(d.uvarint())
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			decodeValue(d, v.Field(i))
		}
	default:
		panic(fmt.Sprintf("wirenet: undecodable kind %v", v.Kind()))
	}
}
