package wirenet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/transport"
)

// Wire format. Every connection — hub↔worker and worker↔worker —
// carries a stream of length-prefixed frames:
//
//	uvarint bodyLen | body
//
// and every body starts with a one-byte frame kind. Message-bearing
// frames (route/fwd/deliver) share one body layout, so relaying a
// message is a one-byte rewrite of the kind, not a re-encode.
const (
	// fkHello is a worker's first frame on its hub connection: its
	// shard index, the shared secret, and its peer-listener address.
	fkHello = byte(iota + 1)
	// fkPeers is the hub's shard directory broadcast: every shard's
	// peer-listener address. Re-broadcast whenever a worker respawns.
	fkPeers
	// fkRoute carries a message hub → shard(From): "inject this into
	// the fabric".
	fkRoute
	// fkFwd carries a message worker → worker along the peer link
	// shard(From) → shard(To).
	fkFwd
	// fkDeliver carries a message shard(To) → hub: "this arrived".
	fkDeliver
	// fkLinkHello opens a worker↔worker link: the dialer's shard index
	// plus the shared secret.
	fkLinkHello
	// fkShutdown asks a worker to exit cleanly.
	fkShutdown
)

// maxFrame bounds one frame body. Protocol payloads are O(1) words, so
// even the hub's k-entry peer directory sits far below this.
const maxFrame = 1 << 20

// wmsg is a protocol message in transit: the transport.Message scalars
// plus the fields the fabric itself needs — the per-directed-edge
// sequence number (FIFO and exactly-once are enforced hub-side against
// it) and the sender's logical-clock stamp.
type wmsg struct {
	From, To transport.NodeID
	EdgeSeq  uint64 // position on the directed edge From→To, from 1
	GSeq     int    // global send ticket (transport.Message.Seq)
	At       int64  // sender's Lamport stamp at send time
	Class    transport.Class
	Words    int
	Payload  []byte // codec-encoded payload, opaque to workers
}

// appendWmsg appends the shared message body (without the kind byte).
func appendWmsg(buf []byte, m wmsg) []byte {
	buf = binary.AppendVarint(buf, int64(m.From))
	buf = binary.AppendVarint(buf, int64(m.To))
	buf = binary.AppendUvarint(buf, m.EdgeSeq)
	buf = binary.AppendUvarint(buf, uint64(m.GSeq))
	buf = binary.AppendVarint(buf, m.At)
	buf = append(buf, byte(m.Class))
	buf = binary.AppendUvarint(buf, uint64(m.Words))
	buf = binary.AppendUvarint(buf, uint64(len(m.Payload)))
	buf = append(buf, m.Payload...)
	return buf
}

// parseWmsg decodes the shared message body (after the kind byte).
func parseWmsg(data []byte) (wmsg, error) {
	var m wmsg
	d := decoder{data: data}
	m.From = transport.NodeID(d.varint())
	m.To = transport.NodeID(d.varint())
	m.EdgeSeq = d.uvarint()
	m.GSeq = int(d.uvarint())
	m.At = d.varint()
	m.Class = transport.Class(d.byte())
	m.Words = int(d.uvarint())
	n := int(d.uvarint())
	if d.err == nil && (n < 0 || n > len(d.data)-d.off) {
		d.err = fmt.Errorf("wirenet: payload length %d exceeds frame", n)
	}
	if d.err != nil {
		return wmsg{}, d.err
	}
	m.Payload = append([]byte(nil), d.data[d.off:d.off+n]...)
	return m, nil
}

// decoder is a cursor over one frame body with sticky errors.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("wirenet: bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("wirenet: bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

func (d *decoder) bytes() []byte {
	n := int(d.uvarint())
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.data)-d.off {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) string() string { return string(d.bytes()) }

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendString(buf []byte, s string) []byte { return appendBytes(buf, []byte(s)) }

// readFrame reads one length-prefixed frame body.
func readFrame(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("wirenet: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// sendq is a per-connection write pump: an unbounded queue drained by
// one goroutine, so no protocol goroutine ever blocks on a full TCP
// buffer (the classic two-sided write deadlock). Frames enqueued after
// close, or left when the connection errors, are silently discarded —
// reliability is end-to-end (the hub retransmits outstanding frames),
// not per-link.
type sendq struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      [][]byte
	closed bool
	conn   net.Conn
}

func newSendq(conn net.Conn) *sendq {
	s := &sendq{conn: conn}
	s.cond = sync.NewCond(&s.mu)
	go s.pump()
	return s
}

// send enqueues one frame body (the length prefix is added on write).
func (s *sendq) send(body []byte) {
	s.mu.Lock()
	if !s.closed {
		s.q = append(s.q, body)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// close drains what is already queued, then closes the connection.
func (s *sendq) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *sendq) pump() {
	w := bufio.NewWriter(s.conn)
	var hdr [binary.MaxVarintLen64]byte
	for {
		s.mu.Lock()
		for len(s.q) == 0 && !s.closed {
			s.cond.Wait()
		}
		batch := s.q
		s.q = nil
		closed := s.closed
		s.mu.Unlock()
		for _, body := range batch {
			n := binary.PutUvarint(hdr[:], uint64(len(body)))
			if _, err := w.Write(hdr[:n]); err != nil {
				s.fail()
				return
			}
			if _, err := w.Write(body); err != nil {
				s.fail()
				return
			}
		}
		if err := w.Flush(); err != nil {
			s.fail()
			return
		}
		if closed {
			s.conn.Close()
			return
		}
	}
}

// fail closes the connection and discards everything still queued.
func (s *sendq) fail() {
	s.mu.Lock()
	s.closed = true
	s.q = nil
	s.mu.Unlock()
	s.conn.Close()
}
