// Package wirenet is the between-processes transport backend: the
// protocol's messages cross real TCP links between worker processes,
// while protocol state (handlers, logical clocks, timers, statistics)
// stays in the hub process where the driver can reach it.
//
// # Topology
//
// One hub (this process) plus k workers, each a shard of the message
// fabric spawned by re-executing the hub's own binary (MaybeWorker
// must therefore be the first call of any main/TestMain that builds a
// Hub). A message from processor u to processor v travels
//
//	hub → worker shard(u) → worker shard(v) → hub
//
// over length-prefixed TCP frames: the hub injects at the sender's
// shard, workers forward over the per-pair peer link, and the
// receiving shard hands the message back to the hub, which runs the
// handler. Workers are stateless routers; the real-network transit is
// the point — arrival order at the hub is decided by TCP scheduling
// across 2–3 hops, making wirenet a genuine adversarial scheduler in
// the way channet's goroutine races are, but across OS processes.
//
// # Ordering and reliability
//
// Every message carries a per-directed-edge sequence number. The hub
// delivers each edge strictly in sequence (out-of-order arrivals are
// held, duplicates discarded), which gives exactly-once FIFO per edge
// end-to-end no matter what the fabric does. Reliability is likewise
// end-to-end: the hub keeps every routed frame until its delivery
// returns, and when a worker dies (crash or kill -9) it respawns the
// shard, re-announces the peer directory, and retransmits everything
// outstanding — duplicates from frames that survived in flight are
// shed by the sequence check. Losing a worker therefore loses no
// protocol state and no messages.
//
// # Driver contract
//
// Hub implements transport.Driver natively (Pulse blocks until the
// fabric quiesces; At runs between pulses where no handler can run)
// and transport.Transport (Step = Pulse().Delivered), so it slots into
// both the new async driver loop and every Transport-shaped test
// harness. Timer semantics mirror channet: per-processor Lamport
// clocks advanced on delivery, earliest-due timer batch fired only
// when message-idle.
package wirenet

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// NodeID identifies a processor, shared with package transport.
type NodeID = transport.NodeID

// maxPulseDeliveries bounds one Pulse's work, like channet: a pulse
// that delivers this much is a protocol livelock.
const maxPulseDeliveries = 1 << 22

var (
	_ transport.Transport = (*Hub)(nil)
	_ transport.Driver    = (*Hub)(nil)
)

// Config parameterizes a Hub.
type Config struct {
	// Shards is the number of worker processes; 0 means 4.
	Shards int
	// DrainTimeout is how long a Pulse waits without any fabric
	// progress before panicking with diagnostics; 0 means 60s.
	DrainTimeout time.Duration
}

// edgeKey identifies a directed edge.
type edgeKey struct{ from, to NodeID }

// outFrame is one routed-but-undelivered message the hub retains for
// retransmission.
type outFrame struct {
	frame []byte // the complete fkRoute body
	words int
}

// timerRec is an armed logical-clock timer (hub-local; timers never
// cross the wire).
type timerRec struct {
	owner NodeID
	due   int64
	seq   int
	msg   transport.Message
}

// workerProc is one live worker process.
type workerProc struct {
	shard, gen int
	cmd        *exec.Cmd
	conn       net.Conn
	out        *sendq
	addr       string // the worker's peer-listener address
}

type pendingSpawn struct {
	cmd *exec.Cmd
	gen int
}

type helloEvt struct {
	shard int
	addr  string
	conn  net.Conn
	r     *bufio.Reader // carries bytes buffered past the hello
}

type downEvt struct{ shard, gen int }

// Hub is the driver-side endpoint of the wire backend. All methods
// except Close are executor-confined: they must be called from the
// driver goroutine (or from handlers, which the hub runs on the
// driver goroutine during Pulse), exactly the discipline the
// transport contract already imposes.
type Hub struct {
	k     int
	cfg   Config
	token string
	ln    net.Listener

	handlers map[NodeID]transport.Handler
	clocks   map[NodeID]int64
	timers   []timerRec

	round int
	seq   int

	edgeSeq     map[edgeKey]uint64              // next sequence to assign per edge
	edgeDone    map[edgeKey]uint64              // highest delivered sequence per edge
	hold        map[edgeKey]map[uint64]wmsg     // out-of-order arrivals awaiting their turn
	outstanding map[edgeKey]map[uint64]outFrame // routed, not yet delivered
	inflight    int

	stats                          transport.Stats
	sentBy                         map[NodeID]int
	dropped                        int
	sawElection, sawSync, sawAudit bool

	gen       int
	workers   []*workerProc
	spawns    map[int]pendingSpawn
	deliverCh chan wmsg
	downCh    chan downEvt
	helloCh   chan helloEvt

	quiesced chan transport.Quiet
	closed   atomic.Bool
	closeErr error
}

// New builds the hub, spawns the worker fleet, and waits until every
// shard has connected. The returned Hub is ready to Pulse; Drive is
// only needed to tie shutdown to a context.
func New(cfg Config) (*Hub, error) {
	k := cfg.Shards
	if k == 0 {
		k = 4
	}
	if k < 1 {
		return nil, fmt.Errorf("wirenet: %d shards", k)
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 60 * time.Second
	}
	tok := make([]byte, 16)
	if _, err := rand.Read(tok); err != nil {
		return nil, fmt.Errorf("wirenet: token: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("wirenet: listen: %w", err)
	}
	h := &Hub{
		k:           k,
		cfg:         cfg,
		token:       hex.EncodeToString(tok),
		ln:          ln,
		handlers:    make(map[NodeID]transport.Handler),
		clocks:      make(map[NodeID]int64),
		edgeSeq:     make(map[edgeKey]uint64),
		edgeDone:    make(map[edgeKey]uint64),
		hold:        make(map[edgeKey]map[uint64]wmsg),
		outstanding: make(map[edgeKey]map[uint64]outFrame),
		sentBy:      make(map[NodeID]int),
		workers:     make([]*workerProc, k),
		spawns:      make(map[int]pendingSpawn),
		deliverCh:   make(chan wmsg, 1<<14),
		downCh:      make(chan downEvt, 8*k+64),
		helloCh:     make(chan helloEvt, k),
		quiesced:    make(chan transport.Quiet, 1),
	}
	go h.acceptLoop()
	for i := 0; i < k; i++ {
		if err := h.spawn(i); err != nil {
			h.Close()
			return nil, err
		}
	}
	for i := 0; i < k; i++ {
		if err := h.waitForWorker(i); err != nil {
			h.Close()
			return nil, err
		}
	}
	h.broadcastPeers()
	return h, nil
}

// spawn re-execs this binary as the given shard.
func (h *Hub) spawn(shard int) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("wirenet: executable path: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		fmt.Sprintf("%s=%d", envWorker, shard),
		fmt.Sprintf("%s=%d", envShards, h.k),
		fmt.Sprintf("%s=%s", envHub, h.ln.Addr().String()),
		fmt.Sprintf("%s=%s", envToken, h.token),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("wirenet: spawn shard %d: %w", shard, err)
	}
	h.gen++
	gen := h.gen
	h.spawns[shard] = pendingSpawn{cmd: cmd, gen: gen}
	go func() {
		cmd.Wait()
		h.notifyDown(downEvt{shard: shard, gen: gen})
	}()
	return nil
}

// waitForWorker consumes hello events until the given shard's pending
// spawn has connected and been installed.
func (h *Hub) waitForWorker(shard int) error {
	deadline := time.After(30 * time.Second)
	for {
		if _, pending := h.spawns[shard]; !pending {
			return nil
		}
		select {
		case evt := <-h.helloCh:
			h.install(evt)
		case <-deadline:
			return fmt.Errorf("wirenet: shard %d did not connect", shard)
		}
	}
}

// install registers a connected worker and starts its reader.
func (h *Hub) install(evt helloEvt) {
	ps, ok := h.spawns[evt.shard]
	if !ok {
		evt.conn.Close()
		return
	}
	delete(h.spawns, evt.shard)
	wp := &workerProc{
		shard: evt.shard, gen: ps.gen, cmd: ps.cmd,
		conn: evt.conn, out: newSendq(evt.conn), addr: evt.addr,
	}
	h.workers[evt.shard] = wp
	go h.readWorker(wp, evt.r)
}

// acceptLoop admits worker connections and forwards their hellos.
func (h *Hub) acceptLoop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			r := bufio.NewReader(conn)
			body, err := readFrame(r)
			conn.SetReadDeadline(time.Time{})
			if err != nil || body[0] != fkHello {
				conn.Close()
				return
			}
			d := decoder{data: body[1:]}
			shard := int(d.uvarint())
			token := d.string()
			addr := d.string()
			if d.err != nil || token != h.token || shard < 0 || shard >= h.k {
				conn.Close()
				return
			}
			h.helloCh <- helloEvt{shard: shard, addr: addr, conn: conn, r: r}
		}(conn)
	}
}

// readWorker relays delivered frames into the executor's channel
// until the connection dies.
func (h *Hub) readWorker(wp *workerProc, r *bufio.Reader) {
	for {
		body, err := readFrame(r)
		if err != nil {
			h.notifyDown(downEvt{shard: wp.shard, gen: wp.gen})
			return
		}
		if body[0] != fkDeliver {
			continue
		}
		m, err := parseWmsg(body[1:])
		if err != nil {
			continue
		}
		h.deliverCh <- m
	}
}

func (h *Hub) notifyDown(evt downEvt) {
	select {
	case h.downCh <- evt:
	default:
	}
}

// broadcastPeers sends the current shard directory to every worker.
func (h *Hub) broadcastPeers() {
	body := []byte{fkPeers}
	body = binary.AppendUvarint(body, uint64(h.k))
	for _, wp := range h.workers {
		if wp == nil {
			return
		}
		body = binary.AppendUvarint(body, uint64(wp.shard))
		body = appendString(body, wp.addr)
	}
	for _, wp := range h.workers {
		wp.out.send(body)
	}
}

// respawn replaces a dead worker and retransmits everything
// outstanding. Stale notifications (the reader and the reaper both
// report one death; retransmitted-over generations linger) are
// filtered by generation.
func (h *Hub) respawn(evt downEvt) {
	if h.closed.Load() {
		return
	}
	wp := h.workers[evt.shard]
	if wp == nil || wp.gen != evt.gen {
		return
	}
	wp.out.close()
	wp.conn.Close()
	wp.cmd.Process.Kill()
	h.workers[evt.shard] = nil
	if err := h.spawn(evt.shard); err != nil {
		panic(fmt.Sprintf("wirenet: respawn shard %d: %v", evt.shard, err))
	}
	if err := h.waitForWorker(evt.shard); err != nil {
		panic(fmt.Sprintf("wirenet: respawn shard %d: %v", evt.shard, err))
	}
	h.broadcastPeers()
	h.retransmit()
}

// retransmit re-injects every outstanding frame, per edge in sequence
// order. Frames that survived in flight arrive twice and are shed by
// the hub's per-edge sequence check; frames lost with the dead worker
// arrive once. Either way every edge stays exactly-once FIFO.
func (h *Hub) retransmit() {
	edges := make([]edgeKey, 0, len(h.outstanding))
	for e, out := range h.outstanding {
		if len(out) > 0 {
			edges = append(edges, e)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		out := h.outstanding[e]
		seqs := make([]uint64, 0, len(out))
		for s := range out {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		wp := h.workers[shardOf(e.from, h.k)]
		for _, s := range seqs {
			wp.out.send(out[s].frame)
		}
	}
}

// --- transport.Plane ---

// AddNode registers a processor. Re-registering replaces the handler.
func (h *Hub) AddNode(id NodeID, hd transport.Handler) {
	if hd == nil {
		panic("wirenet: nil handler")
	}
	h.handlers[id] = hd
	if _, ok := h.clocks[id]; !ok {
		h.clocks[id] = 0
	}
}

// RemoveNode unregisters a processor. Outstanding messages to it are
// dropped and counted now — the Plane contract's single counting
// point — and its armed timers are purged uncounted. Copies of the
// purged messages still in TCP flight are shed on arrival by the
// outstanding-set check, uncounted (they were counted here).
func (h *Hub) RemoveNode(id NodeID) {
	delete(h.handlers, id)
	delete(h.clocks, id)
	for e, out := range h.outstanding {
		if e.to != id {
			continue
		}
		if n := len(out); n > 0 {
			h.dropped += n
			h.inflight -= n
		}
		delete(h.outstanding, e)
		delete(h.hold, e)
	}
	kept := h.timers[:0]
	for _, t := range h.timers {
		if t.owner != id {
			kept = append(kept, t)
		}
	}
	h.timers = kept
}

// HasNode reports whether a processor is registered.
func (h *Hub) HasNode(id NodeID) bool {
	_, ok := h.handlers[id]
	return ok
}

// CancelTimers discards every armed timer owned by one processor.
func (h *Hub) CancelTimers(id NodeID) int {
	cancelled := 0
	kept := h.timers[:0]
	for _, t := range h.timers {
		if t.owner == id {
			cancelled++
			continue
		}
		kept = append(kept, t)
	}
	h.timers = kept
	return cancelled
}

// SkewClock perturbs one processor's logical clock by delta (fault
// injection for the self-stabilization tests, as on channet).
func (h *Hub) SkewClock(id NodeID, delta int64) {
	if _, ok := h.handlers[id]; ok {
		h.clocks[id] += delta
	}
}

// Validate checks backend invariants: clocks non-negative, timers
// owned by registered processors, inflight consistent with the
// outstanding set.
func (h *Hub) Validate() error {
	for id, c := range h.clocks {
		if c < 0 {
			return fmt.Errorf("wirenet: processor %d has negative logical clock %d", id, c)
		}
	}
	for _, t := range h.timers {
		if _, ok := h.handlers[t.owner]; !ok {
			return fmt.Errorf("wirenet: armed timer owned by unregistered processor %d", t.owner)
		}
	}
	n := 0
	for _, out := range h.outstanding {
		n += len(out)
	}
	if n != h.inflight {
		return fmt.Errorf("wirenet: inflight %d != outstanding %d", h.inflight, n)
	}
	return nil
}

// Round returns the macro-pulse counter.
func (h *Hub) Round() int { return h.round }

// Send enqueues a message for asynchronous delivery. Words must be at
// least 1.
func (h *Hub) Send(from, to NodeID, payload any, words int) {
	h.SendClass(from, to, payload, words, transport.ClassData)
}

// SendClass is Send with an explicit accounting class. Sends to dead
// targets drop and count here (the normalized counting point); live
// sends are encoded and injected into the fabric at shard(from).
func (h *Hub) SendClass(from, to NodeID, payload any, words int, class transport.Class) {
	if words < 1 {
		panic(fmt.Sprintf("wirenet: message with %d words", words))
	}
	h.seq++
	if _, ok := h.handlers[to]; !ok {
		h.dropped++
		return
	}
	pb, err := encodePayload(nil, payload)
	if err != nil {
		panic(err)
	}
	e := edgeKey{from: from, to: to}
	h.edgeSeq[e]++
	m := wmsg{
		From: from, To: to,
		EdgeSeq: h.edgeSeq[e], GSeq: h.seq,
		At: h.clocks[from], Class: class, Words: words,
		Payload: pb,
	}
	frame := appendWmsg([]byte{fkRoute}, m)
	out := h.outstanding[e]
	if out == nil {
		out = make(map[uint64]outFrame)
		h.outstanding[e] = out
	}
	out[m.EdgeSeq] = outFrame{frame: frame, words: words}
	h.inflight++
	if wp := h.workers[shardOf(from, h.k)]; wp != nil {
		wp.out.send(frame)
	}
	// A nil worker slot (mid-respawn) is fine: the frame is
	// outstanding and goes out with the retransmit.
}

// SendTimer arms a local wake-up after delay ticks of the owner's
// logical clock. Timers are hub-local and never cross the wire.
func (h *Hub) SendTimer(owner NodeID, payload any, delay int) {
	if delay < 1 {
		panic(fmt.Sprintf("wirenet: timer with delay %d", delay))
	}
	h.seq++
	m := transport.Message{From: owner, To: owner, Payload: payload, Timer: true, Seq: h.seq}
	h.timers = append(h.timers, timerRec{owner: owner, due: h.clocks[owner] + int64(delay), seq: m.Seq, msg: m})
}

// EdgeBudget is always 0: wirenet has no bandwidth model.
func (h *Hub) EdgeBudget(from, to NodeID) int { return 0 }

// Bandwidth returns 0: unlimited, always.
func (h *Hub) Bandwidth() int { return 0 }

// SetBandwidth accepts only 0; congestion modeling is simnet-only.
func (h *Hub) SetBandwidth(words int) {
	if words != 0 {
		panic("wirenet: no bandwidth model (congestion experiments are simnet-only)")
	}
}

// SetEdgeBandwidth accepts only non-positive words (cap removal).
func (h *Hub) SetEdgeBandwidth(from, to NodeID, words int) {
	if words > 0 {
		panic("wirenet: no bandwidth model (congestion experiments are simnet-only)")
	}
}

// SetNodeBandwidth accepts only non-positive words (cap removal).
func (h *Hub) SetNodeBandwidth(id NodeID, words int) {
	if words > 0 {
		panic("wirenet: no bandwidth model (congestion experiments are simnet-only)")
	}
}

// Pending reports undelivered messages plus armed timers.
func (h *Hub) Pending() int { return h.inflight + len(h.timers) }

// PendingWords sums the sizes of all undelivered network messages.
func (h *Hub) PendingWords() int {
	words := 0
	for _, out := range h.outstanding {
		for _, f := range out {
			words += f.words
		}
	}
	return words
}

// DropPending discards every outstanding message and armed timer.
// In-flight copies arriving later are shed by the outstanding check.
func (h *Hub) DropPending() int {
	k := len(h.timers)
	h.timers = nil
	for e, out := range h.outstanding {
		k += len(out)
		delete(h.outstanding, e)
		delete(h.hold, e)
	}
	h.inflight = 0
	return k
}

// Dropped returns the number of network messages addressed to dead
// processors.
func (h *Hub) Dropped() int { return h.dropped }

// Stats returns a copy of the traffic statistics.
func (h *Hub) Stats() transport.Stats { return h.stats }

// ResetStats zeroes the traffic statistics.
func (h *Hub) ResetStats() {
	h.stats = transport.Stats{}
	h.sentBy = make(map[NodeID]int)
}

// --- driving ---

// Step satisfies transport.Transport: one Pulse's deliveries.
func (h *Hub) Step() int { return h.Pulse().Delivered }

// Pulse drives the fabric to a quiescent point: deliver until nothing
// is in flight; if that delivered nothing and timers are armed, fire
// the earliest-due batch and drain its cascade. Mirrors channet's
// Step structure.
func (h *Hub) Pulse() transport.Quiet {
	// Handle worker deaths noticed while idle.
	for {
		select {
		case evt := <-h.downCh:
			h.respawn(evt)
			continue
		default:
		}
		break
	}
	h.round++
	delivered := h.drain()
	if delivered == 0 {
		if fired := h.fireEarliest(); fired > 0 {
			delivered = fired + h.drain()
		}
	}
	if delivered > 0 {
		h.stats.Rounds++
		if h.sawElection {
			h.stats.ElectionRounds++
		}
		if h.sawSync {
			h.stats.SyncRounds++
		}
		if h.sawAudit {
			h.stats.AuditRounds++
		}
	}
	h.sawElection, h.sawSync, h.sawAudit = false, false, false
	q := transport.Quiet{Delivered: delivered, Pending: h.Pending()}
	h.publish(q)
	return q
}

// drain runs handler deliveries until no message is in flight,
// respawning workers that die along the way.
func (h *Hub) drain() int {
	if h.inflight == 0 {
		return 0
	}
	delivered := 0
	idle := time.NewTimer(h.cfg.DrainTimeout)
	defer idle.Stop()
	for h.inflight > 0 {
		select {
		case m := <-h.deliverCh:
			delivered += h.accept(m)
		case evt := <-h.downCh:
			h.respawn(evt)
		case <-idle.C:
			panic(fmt.Sprintf("wirenet: no fabric progress in %v (%d inflight, %d delivered this pulse)",
				h.cfg.DrainTimeout, h.inflight, delivered))
		}
		if delivered > maxPulseDeliveries {
			panic("wirenet: runaway pulse (protocol livelock?)")
		}
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(h.cfg.DrainTimeout)
	}
	return delivered
}

// accept applies the per-edge ordering to one arrival: deliver it if
// it is the edge's next sequence (then chain any held successors),
// hold it if early, shed it if duplicate or purged.
func (h *Hub) accept(m wmsg) int {
	e := edgeKey{from: m.From, to: m.To}
	out := h.outstanding[e]
	if out == nil {
		return 0
	}
	if _, live := out[m.EdgeSeq]; !live {
		return 0 // duplicate, or purged with a dead target
	}
	if m.EdgeSeq != h.edgeDone[e]+1 {
		hl := h.hold[e]
		if hl == nil {
			hl = make(map[uint64]wmsg)
			h.hold[e] = hl
		}
		hl[m.EdgeSeq] = m
		return 0
	}
	count := 0
	h.deliver(e, m)
	count++
	for {
		next, held := h.hold[e][h.edgeDone[e]+1]
		if !held {
			break
		}
		delete(h.hold[e], next.EdgeSeq)
		h.deliver(e, next)
		count++
	}
	return count
}

// deliver hands one in-order message to its handler: advance the
// receiver's Lamport clock, decode the payload, book the stats, run.
func (h *Hub) deliver(e edgeKey, m wmsg) {
	delete(h.outstanding[e], m.EdgeSeq)
	h.edgeDone[e] = m.EdgeSeq
	h.inflight--
	hd, ok := h.handlers[m.To]
	if !ok {
		// Unreachable: frames to dead targets are purged from the
		// outstanding set at RemoveNode, which also counted them.
		return
	}
	p, err := decodePayload(m.Payload)
	if err != nil {
		panic(fmt.Sprintf("wirenet: %v→%v seq %d: %v", m.From, m.To, m.EdgeSeq, err))
	}
	if c := h.clocks[m.To]; m.At > c {
		h.clocks[m.To] = m.At
	}
	h.clocks[m.To]++
	msg := transport.Message{
		From: m.From, To: m.To, Payload: p,
		Words: m.Words, Class: m.Class, Seq: m.GSeq,
	}
	h.book(msg)
	hd(h, msg)
}

// fireEarliest delivers the earliest-due timer batch (all timers tied
// at the minimum due), ordered by (owner, seq), stamping each owner's
// clock to at least its due tick — channet's exact semantics, except
// the handler runs inline (timers never enter the fabric).
func (h *Hub) fireEarliest() int {
	if len(h.timers) == 0 {
		return 0
	}
	min := h.timers[0].due
	for _, t := range h.timers[1:] {
		if t.due < min {
			min = t.due
		}
	}
	var batch []timerRec
	kept := h.timers[:0]
	for _, t := range h.timers {
		if t.due == min {
			batch = append(batch, t)
		} else {
			kept = append(kept, t)
		}
	}
	h.timers = kept
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].owner != batch[j].owner {
			return batch[i].owner < batch[j].owner
		}
		return batch[i].seq < batch[j].seq
	})
	fired := 0
	for _, t := range batch {
		hd, ok := h.handlers[t.owner]
		if !ok {
			continue // unreachable: purged at RemoveNode
		}
		at := t.due - 1
		if c := h.clocks[t.owner]; at > c {
			h.clocks[t.owner] = at
		}
		h.clocks[t.owner]++
		hd(h, t.msg)
		fired++
	}
	return fired
}

// book folds one delivered network message into the stats.
func (h *Hub) book(m transport.Message) {
	if m.Timer {
		return
	}
	h.stats.Messages++
	h.stats.TotalWords += m.Words
	if m.Words > h.stats.MaxWords {
		h.stats.MaxWords = m.Words
	}
	h.sentBy[m.From]++
	if h.sentBy[m.From] > h.stats.MaxSentByNode {
		h.stats.MaxSentByNode = h.sentBy[m.From]
	}
	switch m.Class {
	case transport.ClassElection:
		h.stats.ElectionMessages++
		h.sawElection = true
	case transport.ClassSync:
		h.stats.SyncMessages++
		h.sawSync = true
	case transport.ClassAudit:
		h.stats.AuditMessages++
		h.sawAudit = true
	}
}

// --- transport.Driver control plane ---

// Drive ties the hub's lifetime to ctx: cancellation closes it. The
// fabric itself is already running (New spawns the fleet), so this
// never blocks.
func (h *Hub) Drive(ctx context.Context) error {
	if ctx != nil && ctx.Done() != nil {
		go func() {
			<-ctx.Done()
			h.Close()
		}()
	}
	return nil
}

// Close shuts the fleet down: a courtesy shutdown frame, then SIGKILL.
// Safe to call multiple times; concurrent with a running Pulse only
// during teardown.
func (h *Hub) Close() error {
	if h.closed.Swap(true) {
		return h.closeErr
	}
	for _, wp := range h.workers {
		if wp == nil {
			continue
		}
		wp.out.send([]byte{fkShutdown})
		wp.out.close()
	}
	for _, ps := range h.spawns {
		ps.cmd.Process.Kill()
	}
	h.ln.Close()
	for _, wp := range h.workers {
		if wp == nil {
			continue
		}
		// The shutdown frame is a courtesy; the kill is the guarantee.
		wp.cmd.Process.Kill()
	}
	return nil
}

// At runs fn at a safe point. Handlers only run inside Pulse on the
// caller's own goroutine, so between pulses every point is safe and fn
// runs inline.
func (h *Hub) At(fn func()) { fn() }

// Quiesced reports each Pulse's quiescent point, latest-wins.
func (h *Hub) Quiesced() <-chan transport.Quiet { return h.quiesced }

func (h *Hub) publish(q transport.Quiet) {
	for {
		select {
		case h.quiesced <- q:
			return
		default:
			select {
			case <-h.quiesced:
			default:
			}
		}
	}
}

// --- test hooks ---

// Shards returns the worker count.
func (h *Hub) Shards() int { return h.k }

// WorkerPIDs returns the live workers' process IDs (the p2pchurn demo
// prints them; the kill-9 test picks a victim).
func (h *Hub) WorkerPIDs() []int {
	pids := make([]int, 0, h.k)
	for _, wp := range h.workers {
		if wp != nil {
			pids = append(pids, wp.cmd.Process.Pid)
		}
	}
	return pids
}

// KillWorker SIGKILLs one shard's process — the physical analogue of
// the footprint corruption mode. The hub notices via the dead
// connection and respawns the shard with full retransmission; the
// protocol must heal identically.
func (h *Hub) KillWorker(shard int) error {
	if shard < 0 || shard >= h.k || h.workers[shard] == nil {
		return fmt.Errorf("wirenet: no worker for shard %d", shard)
	}
	return h.workers[shard].cmd.Process.Kill()
}
