package wirenet

import (
	"os"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestMain makes the re-exec contract work for the test binary: when
// the hub under test spawns workers, the children re-enter this very
// binary and must become shards instead of running the tests.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// Test payload vocabulary (tags far above the protocol's range).
type testPing struct {
	N    int64
	Hops uint32
}

type testNested struct {
	A    int
	B    uint8
	Pair struct {
		X, Y int64
	}
}

func init() {
	RegisterPayload(200, testPing{})
	RegisterPayload(201, testNested{})
}

func TestCodecRoundTrip(t *testing.T) {
	in := testNested{A: -42, B: 7}
	in.Pair.X = 1 << 40
	in.Pair.Y = -3
	buf, err := encodePayload(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodePayload(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(testNested)
	if !ok {
		t.Fatalf("decoded %T, want testNested", out)
	}
	if got != in {
		t.Fatalf("round trip %+v != %+v", got, in)
	}
	if _, err := encodePayload(nil, struct{ Z int }{1}); err == nil {
		t.Fatal("encoding an unregistered type did not error")
	}
}

func newTestHub(t *testing.T, shards int) *Hub {
	t.Helper()
	h, err := New(Config{Shards: shards, DrainTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// TestHubPingPong runs a two-node cross-shard exchange: every message
// crosses hub → worker → worker → hub, and the pulse must drain the
// full cascade.
func TestHubPingPong(t *testing.T) {
	h := newTestHub(t, 2)
	var log []int64
	h.AddNode(1, func(e transport.Endpoint, m transport.Message) {
		p := m.Payload.(testPing)
		log = append(log, p.N)
	})
	h.AddNode(2, func(e transport.Endpoint, m transport.Message) {
		p := m.Payload.(testPing)
		if p.N > 0 {
			e.Send(2, 1, testPing{N: p.N}, 1)
		}
	})
	const k = 100
	for i := 1; i <= k; i++ {
		h.Send(1, 2, testPing{N: int64(i)}, 1)
	}
	q := h.Pulse()
	if q.Delivered != 2*k {
		t.Fatalf("Pulse delivered %d, want %d", q.Delivered, 2*k)
	}
	if q.Pending != 0 || h.Pending() != 0 {
		t.Fatalf("Pending = %d after full drain", h.Pending())
	}
	if len(log) != k {
		t.Fatalf("node 1 saw %d replies, want %d", len(log), k)
	}
	for i, n := range log {
		if n != int64(i+1) {
			t.Fatalf("FIFO violation: reply %d has N=%d", i, n)
		}
	}
	if s := h.Stats(); s.Messages != 2*k {
		t.Fatalf("Stats.Messages = %d, want %d", s.Messages, 2*k)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestHubTimers checks channet's timer contract: timers fire only when
// message-idle, earliest batch first, and the owner's clock lands at
// least on the due tick.
func TestHubTimers(t *testing.T) {
	h := newTestHub(t, 2)
	var fired []string
	h.AddNode(1, func(e transport.Endpoint, m transport.Message) {
		fired = append(fired, m.Payload.(string))
	})
	h.SendTimer(1, "late", 5)
	h.SendTimer(1, "early", 2)
	if d := h.Pulse().Delivered; d != 1 {
		t.Fatalf("first pulse delivered %d, want 1 (earliest timer)", d)
	}
	if d := h.Pulse().Delivered; d != 1 {
		t.Fatalf("second pulse delivered %d, want 1 (second timer)", d)
	}
	if len(fired) != 2 || fired[0] != "early" || fired[1] != "late" {
		t.Fatalf("timer order %v, want [early late]", fired)
	}
	if h.Pending() != 0 {
		t.Fatalf("Pending = %d after both timers", h.Pending())
	}
}

// TestHubDroppedCounting mirrors the cross-backend conformance test:
// count at RemoveNode for queued, at send afterwards, timers never.
func TestHubDroppedCounting(t *testing.T) {
	h := newTestHub(t, 2)
	noop := func(transport.Endpoint, transport.Message) {}
	h.AddNode(1, noop)
	h.AddNode(2, noop)
	h.Send(1, 2, testPing{N: 1}, 1)
	h.RemoveNode(2)
	if got := h.Dropped(); got != 1 {
		t.Fatalf("Dropped after RemoveNode = %d, want 1", got)
	}
	h.Send(1, 2, testPing{N: 2}, 1)
	if got := h.Dropped(); got != 2 {
		t.Fatalf("Dropped after send-to-dead = %d, want 2", got)
	}
	h.SendTimer(1, "tick", 3)
	h.RemoveNode(1)
	if got, p := h.Dropped(), h.Pending(); got != 2 || p != 0 {
		t.Fatalf("after timer purge Dropped=%d Pending=%d, want 2, 0", got, p)
	}
	if d := h.Pulse().Delivered; d != 0 {
		t.Fatalf("Pulse delivered %d on empty net", d)
	}
	// The purged message's frame may still arrive from the fabric; it
	// must be shed without double counting.
	if got := h.Dropped(); got != 2 {
		t.Fatalf("Dropped after pulse = %d, want 2", got)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestHubKillWorker SIGKILLs a shard with traffic in flight: the hub
// must respawn it, retransmit, and deliver every message exactly once
// in FIFO order.
func TestHubKillWorker(t *testing.T) {
	h := newTestHub(t, 3)
	var got []int64
	h.AddNode(1, func(transport.Endpoint, transport.Message) {})
	h.AddNode(2, func(e transport.Endpoint, m transport.Message) {
		got = append(got, m.Payload.(testPing).N)
	})
	const k = 400
	for i := 1; i <= k; i++ {
		h.Send(1, 2, testPing{N: int64(i)}, 1)
	}
	// Kill the sender's shard while its queue is (likely) nonempty.
	if err := h.KillWorker(shardOf(1, 3)); err != nil {
		t.Fatal(err)
	}
	if d := h.Pulse().Delivered; d != k {
		t.Fatalf("delivered %d, want %d", d, k)
	}
	for i, n := range got {
		if n != int64(i+1) {
			t.Fatalf("FIFO/exactly-once violation at %d: got N=%d", i, n)
		}
	}
	// Kill a different shard while idle too: the next pulse respawns
	// it and traffic keeps flowing.
	if err := h.KillWorker(shardOf(2, 3)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the death notification land
	h.Send(1, 2, testPing{N: 9999}, 1)
	if d := h.Pulse().Delivered; d != 1 {
		t.Fatalf("post-respawn pulse delivered %d, want 1", d)
	}
	if got[len(got)-1] != 9999 {
		t.Fatalf("lost the post-respawn message")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}
