package wirenet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/transport"
)

// A worker is one shard of the message fabric, running in its own OS
// process (the hub re-execs its own binary with the env vars below).
// Workers are deliberately stateless store-and-forward routers: the
// hub injects a message at shard(From) (fkRoute), the worker forwards
// it over the shard(From)→shard(To) peer link (fkFwd), and shard(To)
// hands it back to the hub (fkDeliver) — so every message crosses real
// TCP links and its arrival order at the hub is genuinely
// nondeterministic (the adversarial scheduler the protocol must
// tolerate), while all protocol state stays hub-side where the
// driver can reach it. Losing a worker loses only in-transit frames,
// which the hub retransmits end-to-end (see hub.go); a worker holds
// nothing that needs recovery, which is what makes kill -9 a safe
// fault to inject.

// Environment contract between hub and worker process.
const (
	envWorker = "WIRENET_WORKER" // shard index; presence selects worker mode
	envShards = "WIRENET_SHARDS" // total shard count
	envHub    = "WIRENET_HUB"    // hub listener address
	envToken  = "WIRENET_TOKEN"  // shared secret, checked on every handshake
)

// MaybeWorker turns the current process into a wirenet worker if it
// was spawned as one, and never returns in that case. It MUST be the
// first call in main() (or TestMain) of any binary that constructs a
// Hub: the hub spawns workers by re-executing its own binary, and
// without this check the child would run the program instead of the
// shard.
func MaybeWorker() {
	spec := os.Getenv(envWorker)
	if spec == "" {
		return
	}
	id, err := strconv.Atoi(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wirenet worker: bad %s=%q: %v\n", envWorker, spec, err)
		os.Exit(2)
	}
	k, err := strconv.Atoi(os.Getenv(envShards))
	if err != nil || k <= 0 {
		fmt.Fprintf(os.Stderr, "wirenet worker: bad %s=%q\n", envShards, os.Getenv(envShards))
		os.Exit(2)
	}
	workerMain(id, k, os.Getenv(envHub), os.Getenv(envToken))
	os.Exit(0)
}

// shardOf maps a processor to its shard.
func shardOf(id transport.NodeID, k int) int {
	s := int(int64(id) % int64(k))
	if s < 0 {
		s += k
	}
	return s
}

// worker is the per-process router state.
type worker struct {
	id, k int
	token string
	hub   *sendq

	mu      sync.Mutex
	links   map[int]*sendq   // live peer links by shard
	addrs   map[int]string   // last known peer-listener addresses
	pending map[int][][]byte // frames awaiting a link to come up
}

func workerMain(id, k int, hubAddr, token string) {
	// Peer listener first, so the hello can carry its address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "wirenet worker %d: listen: %v\n", id, err)
		os.Exit(1)
	}
	conn, err := net.Dial("tcp", hubAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wirenet worker %d: dial hub %s: %v\n", id, hubAddr, err)
		os.Exit(1)
	}
	w := &worker{
		id: id, k: k, token: token,
		hub:     newSendq(conn),
		links:   make(map[int]*sendq),
		addrs:   make(map[int]string),
		pending: make(map[int][][]byte),
	}

	hello := []byte{fkHello}
	hello = binary.AppendUvarint(hello, uint64(id))
	hello = appendString(hello, token)
	hello = appendString(hello, ln.Addr().String())
	w.hub.send(hello)

	go w.acceptPeers(ln)

	// The hub connection is the worker's lifeline: EOF or a shutdown
	// frame ends the process (the hub died, or is closing down).
	r := bufio.NewReader(conn)
	for {
		body, err := readFrame(r)
		if err != nil {
			return
		}
		switch body[0] {
		case fkPeers:
			w.updatePeers(body[1:])
		case fkRoute:
			w.route(body)
		case fkShutdown:
			return
		}
	}
}

// route forwards one hub-injected frame toward shard(To).
func (w *worker) route(body []byte) {
	m, err := parseWmsg(body[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "wirenet worker %d: bad route frame: %v\n", w.id, err)
		return
	}
	dst := shardOf(m.To, w.k)
	if dst == w.id {
		// Same-shard edge: straight back to the hub.
		body[0] = fkDeliver
		w.hub.send(body)
		return
	}
	body[0] = fkFwd
	w.forward(dst, body)
}

// forward enqueues a frame on the link to dst, or buffers it until the
// link comes up. Frames buffered toward a peer that never comes up are
// lost with this process — the hub's end-to-end retransmit owns that
// failure mode.
func (w *worker) forward(dst int, body []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if l := w.links[dst]; l != nil {
		l.send(body)
		return
	}
	w.pending[dst] = append(w.pending[dst], body)
}

// updatePeers processes the hub's shard directory: drop links whose
// peer re-registered at a new address, and dial every higher shard we
// are missing (lower dials higher, so each unordered pair gets exactly
// one link; both directions multiplex over it).
func (w *worker) updatePeers(body []byte) {
	d := decoder{data: body}
	n := int(d.uvarint())
	type peer struct {
		shard int
		addr  string
	}
	peers := make([]peer, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		s := int(d.uvarint())
		a := d.string()
		peers = append(peers, peer{shard: s, addr: a})
	}
	if d.err != nil {
		fmt.Fprintf(os.Stderr, "wirenet worker %d: bad peers frame: %v\n", w.id, d.err)
		return
	}
	for _, p := range peers {
		// Only links we dial (higher shards) react to the directory. An
		// address change means the peer respawned, so any existing link
		// is stale: drop it and redial. Links dialed BY lower shards are
		// left alone — their liveness is governed by the connection
		// itself (a dead peer's conn EOFs and the respawn redials us),
		// and a directory update can race ahead of or behind the
		// accepted link, so touching it here would tear down a healthy
		// connection that no one would ever rebuild.
		if p.shard <= w.id {
			continue
		}
		w.mu.Lock()
		changed := w.addrs[p.shard] != "" && w.addrs[p.shard] != p.addr
		w.addrs[p.shard] = p.addr
		if changed {
			if l := w.links[p.shard]; l != nil {
				l.close()
				delete(w.links, p.shard)
			}
		}
		missing := w.links[p.shard] == nil
		w.mu.Unlock()
		if changed || missing {
			go w.dialPeer(p.shard, p.addr)
		}
	}
}

// dialPeer opens the link to a higher shard and drains anything
// buffered for it. A few retries cover the window where the peer's
// listener exists but its accept loop lags.
func (w *worker) dialPeer(shard int, addr string) {
	var conn net.Conn
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wirenet worker %d: dial peer %d at %s: %v\n", w.id, shard, addr, err)
		return
	}
	hello := []byte{fkLinkHello}
	hello = binary.AppendUvarint(hello, uint64(w.id))
	hello = appendString(hello, w.token)
	q := newSendq(conn)
	q.send(hello)
	w.installLink(shard, q)
	go w.readPeer(shard, conn)
}

// acceptPeers admits links dialed by lower shards.
func (w *worker) acceptPeers(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			r := bufio.NewReader(conn)
			body, err := readFrame(r)
			if err != nil || body[0] != fkLinkHello {
				conn.Close()
				return
			}
			d := decoder{data: body[1:]}
			shard := int(d.uvarint())
			token := d.string()
			if d.err != nil || token != w.token || shard < 0 || shard >= w.k {
				conn.Close()
				return
			}
			w.installLink(shard, newSendq(conn))
			w.readPeerFrom(shard, r, conn)
		}(conn)
	}
}

// installLink replaces any existing link to shard and flushes frames
// buffered while it was down.
func (w *worker) installLink(shard int, q *sendq) {
	w.mu.Lock()
	if old := w.links[shard]; old != nil {
		old.close()
	}
	w.links[shard] = q
	buffered := w.pending[shard]
	delete(w.pending, shard)
	w.mu.Unlock()
	for _, body := range buffered {
		q.send(body)
	}
}

func (w *worker) readPeer(shard int, conn net.Conn) {
	w.readPeerFrom(shard, bufio.NewReader(conn), conn)
}

// readPeerFrom relays fkFwd frames addressed to this shard up to the
// hub until the link dies.
func (w *worker) readPeerFrom(shard int, r *bufio.Reader, conn net.Conn) {
	defer func() {
		conn.Close()
		w.mu.Lock()
		// Only forget the link if it is still the one that died.
		if l := w.links[shard]; l != nil && l.conn == conn {
			delete(w.links, shard)
		}
		w.mu.Unlock()
	}()
	for {
		body, err := readFrame(r)
		if err != nil {
			return
		}
		if body[0] != fkFwd {
			continue
		}
		m, err := parseWmsg(body[1:])
		if err != nil || shardOf(m.To, w.k) != w.id {
			continue
		}
		body[0] = fkDeliver
		w.hub.send(body)
	}
}
