package protocol_test

import (
	"fmt"

	"repro/protocol"
)

// Run the message-level repair and inspect its cost — the quantities
// Lemma 4 bounds. The message count includes the in-band coordination
// the protocol no longer gets for free: the leader-election tournament
// over BT_v (2·(15-1) = 28 messages), the termination-detection
// convergecast (14 subtree-dones + 1 phase-done), and the merge plan's
// 29 instruction acks — the in-band completion proof that replaced the
// driver's quiescence barrier — on top of the 59 repair-payload
// messages.
func ExampleNetwork_LastRepair() {
	edges := make([]protocol.Edge, 15)
	for i := range edges {
		edges[i] = protocol.Edge{U: 0, V: protocol.NodeID(i + 1)}
	}
	net, err := protocol.New(edges)
	if err != nil {
		panic(err)
	}
	if err := net.Delete(0); err != nil {
		panic(err)
	}
	rc := net.LastRepair()
	fmt.Println("deleted degree:", rc.DegreePrime)
	fmt.Println("BT_v size:", rc.BTvSize)
	fmt.Println("messages:", rc.Messages)
	fmt.Println("coordination:", rc.ElectionMessages+rc.SyncMessages)
	fmt.Println("verified:", net.Verify() == nil)

	// Output:
	// deleted degree: 15
	// BT_v size: 15
	// messages: 131
	// coordination: 72
	// verified: true
}

// Drive the network open-loop: submit deletions of two far-apart hubs
// without waiting, tick the network yourself, and drain the typed
// completion events. Both repairs run concurrently — their regions are
// disjoint — so the engine heals them in roughly the rounds of one.
func ExampleNetwork_Submit() {
	// Two stars joined by a long path: deleting both hubs damages two
	// independent regions.
	var edges []protocol.Edge
	for i := 1; i <= 6; i++ {
		edges = append(edges, protocol.Edge{U: 0, V: protocol.NodeID(i)})
		edges = append(edges, protocol.Edge{U: 100, V: protocol.NodeID(100 + i)})
	}
	edges = append(edges,
		protocol.Edge{U: 1, V: 50},
		protocol.Edge{U: 50, V: 51},
		protocol.Edge{U: 51, V: 101},
	)
	net, err := protocol.New(edges)
	if err != nil {
		panic(err)
	}
	if err := net.Submit(protocol.DeleteOp(0), protocol.DeleteOp(100)); err != nil {
		panic(err)
	}
	fmt.Println("in flight:", net.InFlight())
	if err := net.Drain(); err != nil {
		panic(err)
	}
	for _, ev := range net.Poll() {
		if ev.Kind == protocol.EventRepairDone {
			fmt.Printf("repaired %d (degree %d)\n", ev.V, ev.Repair.DegreePrime)
		}
	}
	fmt.Println("verified:", net.Verify() == nil)

	// Output:
	// in flight: 2
	// repaired 0 (degree 6)
	// repaired 100 (degree 6)
	// verified: true
}
