package protocol_test

import (
	"fmt"

	"repro/protocol"
)

// Run the message-level repair and inspect its cost — the quantities
// Lemma 4 bounds.
func ExampleNetwork_LastRepair() {
	edges := make([]protocol.Edge, 15)
	for i := range edges {
		edges[i] = protocol.Edge{U: 0, V: protocol.NodeID(i + 1)}
	}
	net, err := protocol.New(edges)
	if err != nil {
		panic(err)
	}
	if err := net.Delete(0); err != nil {
		panic(err)
	}
	rc := net.LastRepair()
	fmt.Println("deleted degree:", rc.DegreePrime)
	fmt.Println("BT_v size:", rc.BTvSize)
	fmt.Println("messages:", rc.Messages)
	fmt.Println("coordination:", rc.ElectionMessages+rc.SyncMessages)
	fmt.Println("verified:", net.Verify() == nil)
	// The message count includes the in-band coordination the protocol
	// no longer gets for free: the leader-election tournament over
	// BT_v (2·(15-1) = 28 messages) and the termination-detection
	// convergecast (14 subtree-dones + 1 phase-done) on top of the 59
	// repair-payload messages.
	// Output:
	// deleted degree: 15
	// BT_v size: 15
	// messages: 102
	// coordination: 43
	// verified: true
}
