package protocol_test

import (
	"fmt"

	"repro/protocol"
)

// Run the message-level repair and inspect its cost — the quantities
// Lemma 4 bounds.
func ExampleNetwork_LastRepair() {
	edges := make([]protocol.Edge, 15)
	for i := range edges {
		edges[i] = protocol.Edge{U: 0, V: protocol.NodeID(i + 1)}
	}
	net, err := protocol.New(edges)
	if err != nil {
		panic(err)
	}
	if err := net.Delete(0); err != nil {
		panic(err)
	}
	rc := net.LastRepair()
	fmt.Println("deleted degree:", rc.DegreePrime)
	fmt.Println("BT_v size:", rc.BTvSize)
	fmt.Println("messages:", rc.Messages)
	fmt.Println("verified:", net.Verify() == nil)
	// Output:
	// deleted degree: 15
	// BT_v size: 15
	// messages: 59
	// verified: true
}
