package protocol

import (
	"os"
	"sort"
	"testing"

	"repro/internal/wirenet"
)

// TestMain lets the wire-transport tests spawn their shard worker
// processes by re-executing this test binary (see wirenet.MaybeWorker).
func TestMain(m *testing.M) {
	wirenet.MaybeWorker()
	os.Exit(m.Run())
}

// sortedEdges canonicalizes an edge list for comparison.
func sortedEdges(es []Edge) []Edge {
	out := append([]Edge(nil), es...)
	for i, e := range out {
		if e.U > e.V {
			out[i] = Edge{U: e.V, V: e.U}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// churn applies one fixed op sequence through the facade.
func churn(t *testing.T, n *Network) {
	t.Helper()
	if err := n.Insert(100, []NodeID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := n.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := n.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := n.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestOptionsFacadeDifferential runs the same churn through New with
// each transport option and asserts the healed networks agree —
// the facade-level version of the transport-equivalence oracle.
func TestOptionsFacadeDifferential(t *testing.T) {
	builds := []struct {
		name string
		opts []Option
	}{
		{"sim-default", nil},
		{"sim-explicit", []Option{WithTransport(TransportSim)}},
		{"chan", []Option{WithTransport(TransportChan)}},
		{"wire", []Option{WithTransport(TransportWire), WithWireShards(3)}},
	}
	var refEdges []Edge
	var refAlive []NodeID
	for _, b := range builds {
		n, err := New(star(12), b.opts...)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		churn(t, n)
		edges := sortedEdges(n.Edges())
		alive := n.Nodes()
		if err := n.Close(); err != nil {
			t.Fatalf("%s: close: %v", b.name, err)
		}
		if refEdges == nil {
			refEdges, refAlive = edges, alive
			continue
		}
		if len(alive) != len(refAlive) {
			t.Fatalf("%s: %d live nodes, want %d", b.name, len(alive), len(refAlive))
		}
		for i := range alive {
			if alive[i] != refAlive[i] {
				t.Fatalf("%s: live set diverges at %d: %d vs %d", b.name, i, alive[i], refAlive[i])
			}
		}
		if len(edges) != len(refEdges) {
			t.Fatalf("%s: %d edges, want %d", b.name, len(edges), len(refEdges))
		}
		for i := range edges {
			if edges[i] != refEdges[i] {
				t.Fatalf("%s: healed edge %d diverges: %v vs %v", b.name, i, edges[i], refEdges[i])
			}
		}
	}
}

// TestOptionsApplyAtConstruction checks that the option-applied knobs
// observable through the facade actually took effect.
func TestOptionsApplyAtConstruction(t *testing.T) {
	var events int
	n, err := New(star(10),
		WithBandwidth(8),
		WithSpread(false),
		WithAudit(AuditConfig{Period: 16, Batch: 2}),
		WithObserver(func(Event) { events++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if !n.AuditEnabled() {
		t.Fatal("WithAudit did not enable the audit layer")
	}
	if err := n.Delete(0); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("WithObserver saw no events")
	}
	if rc := n.LastRepair(); rc.QueuedWords == 0 && rc.CongestionRounds == 0 {
		t.Fatal("WithBandwidth(8) produced no congestion on a star repair")
	}
}

// TestDeprecatedWrapperAgrees pins NewWithTransport to its New
// equivalent.
func TestDeprecatedWrapperAgrees(t *testing.T) {
	a, err := NewWithTransport(star(8), TransportChan)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Transport() != TransportChan {
		t.Fatalf("wrapper transport = %v", a.Transport())
	}
	if err := a.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}
