// Package protocol exposes the message-level Forgiving Graph protocol
// (the paper's Appendix A) for downstream use: a deterministic
// simulation of processors exchanging messages over a synchronous
// network, with per-repair cost accounting against Lemma 4.
//
// Use the root package repro for the data structure itself; use this
// package when you care about the distributed execution — message
// counts, message sizes, round complexity, or running the repair with a
// goroutine per processor.
//
// # Open-loop churn engine
//
// The network is driven in one of two styles. The blocking calls —
// Insert, Delete, DeleteBatch — apply one operation at a time, running
// the simulated network to quiescence before returning, with the cost
// in LastRepair/LastBatch: the measurement mode, and the paper's
// strictly alternating adversary/repair loop. The asynchronous API
// models continuous churn instead: Submit enqueues inserts and deletes
// at any time (including while repairs are in flight), Tick and Run
// advance the network round by round under caller control, and typed
// completion events — RepairDone with its RepairCost, InsertApplied,
// BatchDone, OpRejected — are drained via Poll or streamed through
// SetObserver. Operations behave as if executed one at a time in
// submission order (the differential tests assert the healed graph is
// bit-identical to that serialized replay), but repairs of disjoint
// regions pipeline: a deletion submitted mid-repair is admitted the
// moment its region is free, a deletion colliding with an in-flight
// repair is handed off leader-to-leader when that repair completes,
// and an insert landing in a damaged region is deferred until the
// region heals. The blocking calls are thin wrappers over the engine
// (Delete = Submit + Drain) and require an idle engine.
package protocol

import (
	"fmt"
	"math/rand"

	"repro/internal/audit"
	"repro/internal/channet"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wirenet"
)

// NodeID identifies a processor.
type NodeID int64

// Edge is an undirected edge.
type Edge struct {
	U, V NodeID
}

// RepairCost reports the measured cost of one deletion's repair, the
// quantities Lemma 4 bounds: O(d·log n) messages of size O(log n) and
// O(log d · log n) rounds for a deleted node of degree d.
type RepairCost struct {
	// Deleted is the removed processor; DegreePrime its G′ degree (the
	// d in the bounds).
	Deleted     NodeID
	DegreePrime int
	// Messages and Rounds count protocol traffic and synchronous
	// rounds until quiescence.
	Messages int
	Rounds   int
	// TotalWords and MaxWords measure message sizes in O(log n)-bit
	// words.
	TotalWords int
	MaxWords   int
	// MaxSentByNode bounds any single processor's traffic.
	MaxSentByNode int
	// BTvSize is the size of the repair's coordination tree.
	BTvSize int
	// QueuedWords, MaxEdgeBacklog and CongestionRounds report the
	// repair's congestion under a finite per-edge bandwidth (see
	// SetBandwidth): round-weighted words deferred by full edges, the
	// deepest single-edge backlog, and how many rounds deferred
	// anything. All zero under the default unlimited bandwidth.
	QueuedWords      int
	MaxEdgeBacklog   int
	CongestionRounds int
	// ElectionRounds and SyncRounds expose the repair's in-band
	// coordination cost: rounds carrying the leader-election
	// tournament and rounds carrying termination-detection traffic
	// (acks and convergecast dones). The corresponding messages are
	// included in Messages — synchronization is charged, not assumed.
	ElectionRounds   int
	SyncRounds       int
	ElectionMessages int
	SyncMessages     int
}

// Network is a distributed Forgiving Graph: every processor holds only
// its own per-edge records and all repair coordination happens through
// simulated messages. Not safe for concurrent use.
type Network struct {
	s    *dist.Simulation
	kind TransportKind
}

// TransportKind selects the message-passing substrate the processors
// run on. Both substrates execute the identical per-processor protocol
// and heal bit-identically (the transport-equivalence differential
// tests assert this); they differ in how delivery is scheduled and in
// which measurement knobs exist.
type TransportKind int

const (
	// TransportSim is the deterministic round-synchronous simulator:
	// global rounds, sorted delivery, and the full congestion model
	// (SetBandwidth and friends). The measurement mode.
	TransportSim TransportKind = iota
	// TransportChan runs processors as goroutines over Go channels
	// with per-processor logical clocks — no global round barrier, the
	// Go scheduler picks the interleaving. It has no bandwidth model:
	// SetBandwidth with a positive cap panics, and congestion counters
	// read zero. Use it to check liveness and healing under a real
	// scheduler; use TransportSim for cost tables.
	TransportChan
	// TransportWire runs the message fabric as shard worker processes
	// over loopback TCP (internal/wirenet): every message crosses real
	// sockets between OS processes. Like TransportChan it has no
	// bandwidth model; unlike the in-process transports it holds OS
	// resources, so call Close when done. The spawning binary must call
	// wirenet.MaybeWorker first in main (see that package).
	TransportWire
)

func (k TransportKind) String() string {
	switch k {
	case TransportChan:
		return "chan"
	case TransportWire:
		return "wire"
	}
	return "sim"
}

// ParseTransport maps the command-line spellings ("sim", "chan",
// "wire") to a TransportKind.
func ParseTransport(s string) (TransportKind, error) {
	switch s {
	case "sim", "simnet":
		return TransportSim, nil
	case "chan", "channel", "channet":
		return TransportChan, nil
	case "wire", "wirenet", "tcp":
		return TransportWire, nil
	}
	return 0, fmt.Errorf("protocol: unknown transport %q (want sim, chan or wire)", s)
}

// Option configures a Network at construction time.
type Option func(*options)

type options struct {
	kind      TransportKind
	shards    int
	bandwidth int
	spread    *bool
	audit     *AuditConfig
	coalesce  *CoalesceConfig
	observer  func(Event)
}

// WithTransport selects the message-passing substrate (default
// TransportSim).
func WithTransport(kind TransportKind) Option {
	return func(o *options) { o.kind = kind }
}

// WithWireShards sets the worker process count for TransportWire
// (0 = the wirenet default). Ignored on other transports.
func WithWireShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithBandwidth caps every edge at the given words per round, exactly
// like SetBandwidth — but applied before the first operation, so even
// the first repair runs congested. TransportSim only.
func WithBandwidth(words int) Option {
	return func(o *options) { o.bandwidth = words }
}

// WithSpread sets the sender-side pacing of leader instruction bursts
// (see SetSpread; default on).
func WithSpread(on bool) Option {
	return func(o *options) { o.spread = &on }
}

// WithAudit enables the background self-stabilizing audit layer from
// the start (see EnableAudit).
func WithAudit(cfg AuditConfig) Option {
	return func(o *options) { o.audit = &cfg }
}

// WithCoalescing enables the coalescing admission queue from the start
// (see SetCoalescing).
func WithCoalescing(cfg CoalesceConfig) Option {
	return func(o *options) { o.coalesce = &cfg }
}

// WithObserver streams completion events to fn from the first
// operation on (see SetObserver).
func WithObserver(fn func(Event)) Option {
	return func(o *options) { o.observer = fn }
}

// New builds the distributed network from an initial edge list. With
// no options it runs on the deterministic round-synchronous transport
// with default settings; options select the substrate and apply
// initial configuration in one place:
//
//	n, err := protocol.New(edges,
//	    protocol.WithTransport(protocol.TransportChan),
//	    protocol.WithAudit(protocol.AuditConfig{}))
func New(edges []Edge, opts ...Option) (*Network, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	g0 := graph.New()
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("protocol: self-loop on node %d", e.U)
		}
		g0.AddEdge(graph.NodeID(e.U), graph.NodeID(e.V))
	}
	var net transport.Transport
	switch o.kind {
	case TransportSim:
		net = simnet.New()
	case TransportChan:
		net = channet.New()
	case TransportWire:
		h, err := wirenet.New(wirenet.Config{Shards: o.shards})
		if err != nil {
			return nil, fmt.Errorf("protocol: wire transport: %w", err)
		}
		net = h
	default:
		return nil, fmt.Errorf("protocol: unknown transport kind %d", int(o.kind))
	}
	n := &Network{s: dist.NewSimulationOn(g0, net), kind: o.kind}
	if o.bandwidth > 0 {
		n.SetBandwidth(o.bandwidth)
	}
	if o.spread != nil {
		n.SetSpread(*o.spread)
	}
	if o.audit != nil {
		if err := n.EnableAudit(*o.audit); err != nil {
			n.Close()
			return nil, err
		}
	}
	if o.coalesce != nil {
		n.SetCoalescing(*o.coalesce)
	}
	if o.observer != nil {
		n.SetObserver(o.observer)
	}
	return n, nil
}

// NewWithTransport builds the distributed network on the chosen
// message-passing substrate.
//
// Deprecated: use New(edges, WithTransport(kind)).
func NewWithTransport(edges []Edge, kind TransportKind) (*Network, error) {
	return New(edges, WithTransport(kind))
}

// Transport reports which substrate the network runs on.
func (n *Network) Transport() TransportKind { return n.kind }

// Close releases the transport's resources: worker processes and
// sockets on TransportWire, nothing on the in-process transports. The
// network must not be used afterwards.
func (n *Network) Close() error { return n.s.Close() }

// WorkerPIDs returns the OS process IDs of the transport's shard
// workers (TransportWire), or nil on the in-process transports.
func (n *Network) WorkerPIDs() []int { return n.s.WorkerPIDs() }

// SetParallel switches between sequential message delivery (default,
// the measurement mode) and a goroutine per processor per round. Both
// modes produce identical results.
func (n *Network) SetParallel(on bool) { n.s.SetParallel(on) }

// SetBandwidth caps every network edge at the given number of
// message-words per round (0, the default, is unlimited — the paper's
// model). Excess traffic queues FIFO per edge and spills into later
// rounds: the healed graph and message counts are identical for every
// cap; only rounds and the congestion counters in the cost reports
// change. The congestion model is TransportSim-only: on TransportChan
// a positive cap panics.
func (n *Network) SetBandwidth(words int) { n.s.SetBandwidth(words) }

// SetEdgeBandwidth overrides the capacity of one directed edge,
// modeling heterogeneous links; words <= 0 clears the override.
func (n *Network) SetEdgeBandwidth(from, to NodeID, words int) {
	n.s.SetEdgeBandwidth(graph.NodeID(from), graph.NodeID(to), words)
}

// SetSpread toggles sender-side pacing of the repair leader's
// instruction bursts under a finite bandwidth (default on). Pacing
// shrinks the per-edge backlog without changing the healed graph; off
// reproduces the bursty hotspot for measurement.
func (n *Network) SetSpread(on bool) { n.s.SetSpread(on) }

// Insert adds a processor connected to the given live neighbors.
func (n *Network) Insert(v NodeID, nbrs []NodeID) error {
	conv := make([]graph.NodeID, len(nbrs))
	for i, x := range nbrs {
		conv[i] = graph.NodeID(x)
	}
	return n.s.Insert(graph.NodeID(v), conv)
}

// Delete removes a processor and runs the distributed repair to
// quiescence.
func (n *Network) Delete(v NodeID) error { return n.s.Delete(graph.NodeID(v)) }

// BatchCost reports the measured cost of one batched deletion.
type BatchCost struct {
	// Batch is the number of deletions; Groups how many independent
	// conflict groups they formed (repairs of distinct groups ran
	// concurrently); Waves the serialization depth; Conflicts the
	// number of conflicting repair pairs detected.
	Batch     int
	Groups    int
	Waves     int
	Conflicts int
	// Messages and Rounds cover the whole batch, including the
	// conflict-discovery claim phase. ClaimAborted reports that
	// conflict discovery stopped early because the batch was proven to
	// be one conflict group.
	Messages     int
	Rounds       int
	ClaimAborted bool
	// ElectionRounds and SyncRounds expose the batch's in-band
	// coordination cost across all waves (see RepairCost).
	ElectionRounds int
	SyncRounds     int
	// QueuedWords, MaxEdgeBacklog and CongestionRounds report the
	// batch's congestion under a finite per-edge bandwidth.
	QueuedWords      int
	MaxEdgeBacklog   int
	CongestionRounds int
}

// DeleteBatch removes several processors at once, overlapping the
// repairs of independent damaged regions; repairs whose regions
// collide serialize automatically. The healed graph is identical to
// deleting the nodes one at a time in ascending order.
func (n *Network) DeleteBatch(vs []NodeID) error {
	conv := make([]graph.NodeID, len(vs))
	for i, v := range vs {
		conv[i] = graph.NodeID(v)
	}
	return n.s.DeleteBatch(conv)
}

// LastBatch returns the cost of the most recent DeleteBatch call.
func (n *Network) LastBatch() BatchCost { return convBatch(n.s.LastBatch()) }

// LastRepair returns the cost of the most recent blocking deletion's
// repair; repairs completing asynchronously report theirs in the
// RepairDone event.
func (n *Network) LastRepair() RepairCost { return convRecovery(n.s.LastRecovery()) }

func convBatch(b dist.BatchStats) BatchCost {
	return BatchCost{
		Batch: b.Batch, Groups: b.Groups, Waves: b.Waves,
		Conflicts: b.Conflicts, Messages: b.Messages, Rounds: b.Rounds,
		ClaimAborted:     b.ClaimAborted,
		ElectionRounds:   b.ElectionRounds,
		SyncRounds:       b.SyncRounds,
		QueuedWords:      b.QueuedWords,
		MaxEdgeBacklog:   b.MaxEdgeBacklog,
		CongestionRounds: b.CongestionRounds,
	}
}

func convRecovery(r dist.RecoveryStats) RepairCost {
	return RepairCost{
		Deleted:          NodeID(r.Deleted),
		DegreePrime:      r.DegreePrime,
		Messages:         r.Messages,
		Rounds:           r.Rounds,
		TotalWords:       r.TotalWords,
		MaxWords:         r.MaxWords,
		MaxSentByNode:    r.MaxSentByNode,
		BTvSize:          r.NsetSize,
		QueuedWords:      r.QueuedWords,
		MaxEdgeBacklog:   r.MaxEdgeBacklog,
		CongestionRounds: r.CongestionRounds,
		ElectionRounds:   r.ElectionRounds,
		SyncRounds:       r.SyncRounds,
		ElectionMessages: r.ElectionMessages,
		SyncMessages:     r.SyncMessages,
	}
}

// Alive reports whether v is in the network.
func (n *Network) Alive(v NodeID) bool { return n.s.Alive(graph.NodeID(v)) }

// NumAlive returns the live processor count.
func (n *Network) NumAlive() int { return n.s.NumAlive() }

// Nodes returns the live processors in ascending order.
func (n *Network) Nodes() []NodeID {
	live := n.s.LiveNodes()
	out := make([]NodeID, len(live))
	for i, v := range live {
		out[i] = NodeID(v)
	}
	return out
}

// Edges returns the current actual network's edges.
func (n *Network) Edges() []Edge {
	es := n.s.Physical().Edges()
	out := make([]Edge, len(es))
	for i, e := range es {
		out[i] = Edge{U: NodeID(e.U), V: NodeID(e.V)}
	}
	return out
}

// Degree returns v's degree in the actual network.
func (n *Network) Degree(v NodeID) int {
	return n.s.Physical().Degree(graph.NodeID(v))
}

// Distance returns the hop distance between live processors in the
// actual network, or -1 if unreachable.
func (n *Network) Distance(u, v NodeID) int {
	return n.s.Physical().Distance(graph.NodeID(u), graph.NodeID(v))
}

// Verify revalidates the entire distributed state from scratch (record
// consistency, haft validity, representatives, degree and connectivity
// invariants). A healthy network always returns nil.
func (n *Network) Verify() error { return n.s.Verify() }

// OpKind distinguishes the two churn operation flavors.
type OpKind uint8

const (
	// OpInsert adds a node attached to existing live neighbors.
	OpInsert OpKind = OpKind(dist.OpInsert)
	// OpDelete removes a node, triggering the distributed repair.
	OpDelete OpKind = OpKind(dist.OpDelete)
)

// Op is one churn operation for the asynchronous API.
type Op struct {
	Kind OpKind
	V    NodeID
	Nbrs []NodeID // OpInsert only
}

// Insert and Delete constructors for Op.
func InsertOp(v NodeID, nbrs ...NodeID) Op { return Op{Kind: OpInsert, V: v, Nbrs: nbrs} }
func DeleteOp(v NodeID) Op                 { return Op{Kind: OpDelete, V: v} }

// EventKind tags a completion event from the asynchronous engine.
type EventKind uint8

const (
	// EventRepairDone: a deletion's repair completed; Repair carries
	// its cost. Under overlapping repairs the additive fields are
	// deltas between launch and completion; the Max* fields are
	// high-water marks.
	EventRepairDone EventKind = EventKind(dist.EventRepairDone)
	// EventInsertApplied: a submitted insert was admitted and applied.
	EventInsertApplied EventKind = EventKind(dist.EventInsertApplied)
	// EventBatchDone: a DeleteBatch finished; Batch carries its cost.
	EventBatchDone EventKind = EventKind(dist.EventBatchDone)
	// EventOpRejected: a submitted operation failed validation at its
	// serialization point; Err carries the same error the blocking call
	// would have returned.
	EventOpRejected EventKind = EventKind(dist.EventOpRejected)
	// EventOpCancelled: under WithCoalescing, a submitted delete
	// annihilated with a still-pending insert of the same node; neither
	// op touched the network. One event fires per elided op, in
	// submission order, with Op carrying the elided operation.
	EventOpCancelled EventKind = EventKind(dist.EventOpCancelled)
)

// Event is one typed completion notification.
type Event struct {
	Kind EventKind
	// V is the node the event concerns.
	V NodeID
	// Op is the rejected or cancelled operation (EventOpRejected,
	// EventOpCancelled).
	Op Op
	// Repair is the completed repair's cost (EventRepairDone).
	Repair RepairCost
	// Batch is the completed batch's cost (EventBatchDone).
	Batch BatchCost
	// Latency is the number of rounds between submission and this
	// event.
	Latency int
	// Err is why the operation was rejected (EventOpRejected).
	Err error
}

// Submit enqueues operations for asynchronous execution; whatever the
// in-flight repairs allow is admitted immediately, the rest pipelines
// behind them in submission order. Structural validity is checked
// synchronously; state-dependent validity surfaces as EventOpRejected.
func (n *Network) Submit(ops ...Op) error {
	conv := make([]dist.Op, len(ops))
	for i, op := range ops {
		nbrs := make([]graph.NodeID, len(op.Nbrs))
		for j, x := range op.Nbrs {
			nbrs[j] = graph.NodeID(x)
		}
		conv[i] = dist.Op{Kind: dist.OpKind(op.Kind), V: graph.NodeID(op.V), Nbrs: nbrs}
	}
	return n.s.Submit(conv...)
}

// Tick advances the network one round, reporting whether work remains.
func (n *Network) Tick() bool { return n.s.Tick() }

// Run ticks until the engine is idle or maxRounds elapse, returning
// the rounds advanced.
func (n *Network) Run(maxRounds int) int { return n.s.Run(maxRounds) }

// Drain runs the engine to idleness; it fails only if the protocol
// stalls beyond its quiescence bound.
func (n *Network) Drain() error { return n.s.Drain() }

// Idle reports whether the engine has nothing left to do.
func (n *Network) Idle() bool { return n.s.Idle() }

// InFlight returns the number of repairs currently in progress.
func (n *Network) InFlight() int { return n.s.InFlight() }

// PendingOps returns the number of submitted operations not yet
// admitted.
func (n *Network) PendingOps() int { return n.s.PendingOps() }

// Poll returns the events accumulated since the last Poll and clears
// the buffer.
func (n *Network) Poll() []Event {
	evs := n.s.Poll()
	out := make([]Event, len(evs))
	for i, ev := range evs {
		out[i] = n.convEvent(ev)
	}
	return out
}

// SetObserver streams every event to fn as it fires, replacing the
// Poll buffer as the consumption path (stream-only consumers never
// grow it); nil returns to Poll-based consumption. Callbacks run at
// safe points, so an observer may reenter Submit.
func (n *Network) SetObserver(fn func(Event)) {
	if fn == nil {
		n.s.SetObserver(nil)
		return
	}
	n.s.SetObserver(func(ev dist.Event) { fn(n.convEvent(ev)) })
}

// CoalesceConfig tunes the coalescing admission queue (see
// SetCoalescing). Zero fields select the defaults.
type CoalesceConfig struct {
	// Window is the number of engine Ticks a submitted operation is
	// held before it may launch, giving later submissions the chance to
	// cancel or merge with it (0 = no hold).
	Window int
	// MaxHeld caps simultaneously held operations; when reached every
	// hold flushes at once (<= 0 = default 64).
	MaxHeld int
}

// CoalesceStats reports the coalescing queue's cumulative counters.
type CoalesceStats struct {
	// Submitted counts ops submitted while coalescing was on; Cancelled
	// the ops elided by insert/delete annihilation (two per pair);
	// Merged the deletes chained behind an overlapping pending delete
	// (launched with a pre-appointed leader, skipping the election);
	// Admitted the ops that reached execution.
	Submitted, Cancelled, Merged, Admitted int
	// MessagesSaved is the number of protocol messages provably avoided
	// — a static floor: the skipped elections of merged launches and the
	// notifications plus election of each cancelled pair's repair. The
	// dynamic savings (walks, probes, strip traffic) are measured by the
	// EXP-COALESCE experiment, not counted here.
	MessagesSaved int
}

// SetCoalescing enables the coalescing admission queue for subsequent
// Submit calls: pending insert/delete pairs on the same node annihilate
// (EventOpCancelled), overlapping pending deletions merge into chained
// repair waves with pre-appointed leaders, and each submitted op is
// held Window ticks so later submissions can coalesce with it.
// Operations still behave as if executed serially in submission order
// with the cancelled pairs removed; the healed graph is bit-identical
// to that replay on every transport. Blocking calls are never
// coalesced. Enabling is one-way for the life of the network.
func (n *Network) SetCoalescing(cfg CoalesceConfig) {
	n.s.SetCoalescing(dist.CoalesceConfig{Window: cfg.Window, MaxHeld: cfg.MaxHeld})
}

// CoalesceStats returns the coalescing queue's counters so far.
func (n *Network) CoalesceStats() CoalesceStats {
	st := n.s.CoalesceStats()
	return CoalesceStats{
		Submitted: st.Submitted, Cancelled: st.Cancelled, Merged: st.Merged,
		Admitted: st.Admitted, MessagesSaved: st.MessagesSaved,
	}
}

// AuditConfig tunes the background self-stabilizing audit layer (see
// EnableAudit). Zero fields select the defaults.
type AuditConfig struct {
	// Period is the audit pulse interval in rounds: every Period rounds
	// each processor examines a slice of its own records against its
	// tree neighbors.
	Period int
	// Batch is how many records one pulse examines per processor
	// (round-robin over the rest); larger batches converge faster at
	// more audit traffic per pulse.
	Batch int
}

// AuditStats reports the audit layer's cumulative counters.
type AuditStats struct {
	// Passes counts audit pulses handled, Probes the checksum probes
	// and claims sent, Mismatches the invariant violations detected,
	// Repairs the state corrections applied, and Deferred the
	// examinations skipped because a live repair owned the state.
	Passes, Probes, Mismatches, Repairs, Deferred int
	// Messages and Rounds are the transport-level audit traffic since
	// the last stats reset: delivered audit-class messages and the
	// pulses that carried at least one.
	Messages, Rounds int
}

// EnableAudit switches on the background audit layer: processors
// periodically exchange O(1)-word checksum probes with their
// Reconstruction Tree neighbors, detect silently corrupted state
// (Corrupt's fault modes, or any transient fault with the same
// footprint), and repair it in-band. Off by default; enabling is
// one-way for the life of the network.
func (n *Network) EnableAudit(cfg AuditConfig) error {
	return n.s.EnableAudit(audit.Config{Period: cfg.Period, Batch: cfg.Batch})
}

// AuditEnabled reports whether the audit layer is on.
func (n *Network) AuditEnabled() bool { return n.s.AuditEnabled() }

// AuditStats returns the audit layer's counters so far.
func (n *Network) AuditStats() AuditStats {
	st := n.s.AuditStats()
	msgs, rounds := n.s.AuditTraffic()
	return AuditStats{
		Passes: st.Passes, Probes: st.Probes, Mismatches: st.Mismatches,
		Repairs: st.Repairs, Deferred: st.Deferred,
		Messages: msgs, Rounds: rounds,
	}
}

// CorruptMode selects what kind of processor state Corrupt perturbs.
type CorruptMode int

const (
	// CorruptLeafCount inflates a helper's stored leaf count.
	CorruptLeafCount CorruptMode = CorruptMode(dist.CorruptLeafCount)
	// CorruptHeight inflates a helper's stored height.
	CorruptHeight CorruptMode = CorruptMode(dist.CorruptHeight)
	// CorruptRep misdirects a helper's representative.
	CorruptRep CorruptMode = CorruptMode(dist.CorruptRep)
	// CorruptDroppedParent clears a record's parent pointer.
	CorruptDroppedParent CorruptMode = CorruptMode(dist.CorruptDroppedParent)
	// CorruptDanglingParent points a parent pointer at a record that
	// does not exist.
	CorruptDanglingParent CorruptMode = CorruptMode(dist.CorruptDanglingParent)
	// CorruptChildPtr points one child side of a helper at a
	// nonexistent record.
	CorruptChildPtr CorruptMode = CorruptMode(dist.CorruptChildPtr)
	// CorruptDamageFlag raises a stale repair damage flag.
	CorruptDamageFlag CorruptMode = CorruptMode(dist.CorruptDamageFlag)
	// CorruptStaleEpoch plants repair scratch for a finished epoch.
	CorruptStaleEpoch CorruptMode = CorruptMode(dist.CorruptStaleEpoch)
	// CorruptClaimMark plants a phantom batch-claim mark.
	CorruptClaimMark CorruptMode = CorruptMode(dist.CorruptClaimMark)
	// CorruptFootprint plants a phantom in-flight repair footprint in
	// the open-loop engine.
	CorruptFootprint CorruptMode = CorruptMode(dist.CorruptFootprint)
	// CorruptClock skews one processor's logical clock far negative
	// (TransportChan only; unsupported on TransportSim).
	CorruptClock CorruptMode = CorruptMode(dist.CorruptClock)
)

// CorruptModes lists every corruption mode, for sweeps.
func CorruptModes() []CorruptMode {
	out := make([]CorruptMode, len(dist.CorruptModes))
	for i, m := range dist.CorruptModes {
		out[i] = CorruptMode(m)
	}
	return out
}

func (m CorruptMode) String() string { return dist.CorruptMode(m).String() }

// CorruptReport describes one injected fault.
type CorruptReport struct {
	Mode   CorruptMode
	Victim NodeID
	Detail string
}

// Corrupt silently injects one transient fault of the given mode,
// driven by rng: the perturbation updates no bookkeeping, so nothing
// notices until a full Verify or the audit layer looks. It reports
// false when the mode has no viable target in the current state — a
// no-op, not an error.
func (n *Network) Corrupt(mode CorruptMode, rng *rand.Rand) (CorruptReport, bool) {
	r, ok := n.s.Corrupt(dist.CorruptMode(mode), rng)
	return CorruptReport{Mode: CorruptMode(r.Mode), Victim: NodeID(r.Victim), Detail: r.Detail}, ok
}

func (n *Network) convEvent(ev dist.Event) Event {
	out := Event{
		Kind:    EventKind(ev.Kind),
		V:       NodeID(ev.V),
		Latency: ev.Latency,
		Err:     ev.Err,
	}
	switch ev.Kind {
	case dist.EventRepairDone:
		out.Repair = convRecovery(ev.Repair)
	case dist.EventBatchDone:
		out.Batch = convBatch(ev.Batch)
	case dist.EventOpRejected, dist.EventOpCancelled:
		nbrs := make([]NodeID, len(ev.Op.Nbrs))
		for i, x := range ev.Op.Nbrs {
			nbrs[i] = NodeID(x)
		}
		out.Op = Op{Kind: OpKind(ev.Op.Kind), V: NodeID(ev.Op.V), Nbrs: nbrs}
	}
	return out
}
