// Package protocol exposes the message-level Forgiving Graph protocol
// (the paper's Appendix A) for downstream use: a deterministic
// simulation of processors exchanging messages over a synchronous
// network, with per-repair cost accounting against Lemma 4.
//
// Use the root package repro for the data structure itself; use this
// package when you care about the distributed execution — message
// counts, message sizes, round complexity, or running the repair with a
// goroutine per processor.
package protocol

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
)

// NodeID identifies a processor.
type NodeID int64

// Edge is an undirected edge.
type Edge struct {
	U, V NodeID
}

// RepairCost reports the measured cost of one deletion's repair, the
// quantities Lemma 4 bounds: O(d·log n) messages of size O(log n) and
// O(log d · log n) rounds for a deleted node of degree d.
type RepairCost struct {
	// Deleted is the removed processor; DegreePrime its G′ degree (the
	// d in the bounds).
	Deleted     NodeID
	DegreePrime int
	// Messages and Rounds count protocol traffic and synchronous
	// rounds until quiescence.
	Messages int
	Rounds   int
	// TotalWords and MaxWords measure message sizes in O(log n)-bit
	// words.
	TotalWords int
	MaxWords   int
	// MaxSentByNode bounds any single processor's traffic.
	MaxSentByNode int
	// BTvSize is the size of the repair's coordination tree.
	BTvSize int
	// QueuedWords, MaxEdgeBacklog and CongestionRounds report the
	// repair's congestion under a finite per-edge bandwidth (see
	// SetBandwidth): round-weighted words deferred by full edges, the
	// deepest single-edge backlog, and how many rounds deferred
	// anything. All zero under the default unlimited bandwidth.
	QueuedWords      int
	MaxEdgeBacklog   int
	CongestionRounds int
	// ElectionRounds and SyncRounds expose the repair's in-band
	// coordination cost: rounds carrying the leader-election
	// tournament and rounds carrying termination-detection traffic
	// (acks and convergecast dones). The corresponding messages are
	// included in Messages — synchronization is charged, not assumed.
	ElectionRounds   int
	SyncRounds       int
	ElectionMessages int
	SyncMessages     int
}

// Network is a distributed Forgiving Graph: every processor holds only
// its own per-edge records and all repair coordination happens through
// simulated messages. Not safe for concurrent use.
type Network struct {
	s *dist.Simulation
}

// New builds the distributed network from an initial edge list.
func New(edges []Edge) (*Network, error) {
	g0 := graph.New()
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("protocol: self-loop on node %d", e.U)
		}
		g0.AddEdge(graph.NodeID(e.U), graph.NodeID(e.V))
	}
	return &Network{s: dist.NewSimulation(g0)}, nil
}

// SetParallel switches between sequential message delivery (default,
// the measurement mode) and a goroutine per processor per round. Both
// modes produce identical results.
func (n *Network) SetParallel(on bool) { n.s.SetParallel(on) }

// SetBandwidth caps every network edge at the given number of
// message-words per round (0, the default, is unlimited — the paper's
// model). Excess traffic queues FIFO per edge and spills into later
// rounds: the healed graph and message counts are identical for every
// cap; only rounds and the congestion counters in the cost reports
// change.
func (n *Network) SetBandwidth(words int) { n.s.SetBandwidth(words) }

// SetEdgeBandwidth overrides the capacity of one directed edge,
// modeling heterogeneous links; words <= 0 clears the override.
func (n *Network) SetEdgeBandwidth(from, to NodeID, words int) {
	n.s.SetEdgeBandwidth(graph.NodeID(from), graph.NodeID(to), words)
}

// SetSpread toggles sender-side pacing of the repair leader's
// instruction bursts under a finite bandwidth (default on). Pacing
// shrinks the per-edge backlog without changing the healed graph; off
// reproduces the bursty hotspot for measurement.
func (n *Network) SetSpread(on bool) { n.s.SetSpread(on) }

// Insert adds a processor connected to the given live neighbors.
func (n *Network) Insert(v NodeID, nbrs []NodeID) error {
	conv := make([]graph.NodeID, len(nbrs))
	for i, x := range nbrs {
		conv[i] = graph.NodeID(x)
	}
	return n.s.Insert(graph.NodeID(v), conv)
}

// Delete removes a processor and runs the distributed repair to
// quiescence.
func (n *Network) Delete(v NodeID) error { return n.s.Delete(graph.NodeID(v)) }

// BatchCost reports the measured cost of one batched deletion.
type BatchCost struct {
	// Batch is the number of deletions; Groups how many independent
	// conflict groups they formed (repairs of distinct groups ran
	// concurrently); Waves the serialization depth; Conflicts the
	// number of conflicting repair pairs detected.
	Batch     int
	Groups    int
	Waves     int
	Conflicts int
	// Messages and Rounds cover the whole batch, including the
	// conflict-discovery claim phase. ClaimAborted reports that
	// conflict discovery stopped early because the batch was proven to
	// be one conflict group.
	Messages     int
	Rounds       int
	ClaimAborted bool
	// ElectionRounds and SyncRounds expose the batch's in-band
	// coordination cost across all waves (see RepairCost).
	ElectionRounds int
	SyncRounds     int
	// QueuedWords, MaxEdgeBacklog and CongestionRounds report the
	// batch's congestion under a finite per-edge bandwidth.
	QueuedWords      int
	MaxEdgeBacklog   int
	CongestionRounds int
}

// DeleteBatch removes several processors at once, overlapping the
// repairs of independent damaged regions; repairs whose regions
// collide serialize automatically. The healed graph is identical to
// deleting the nodes one at a time in ascending order.
func (n *Network) DeleteBatch(vs []NodeID) error {
	conv := make([]graph.NodeID, len(vs))
	for i, v := range vs {
		conv[i] = graph.NodeID(v)
	}
	return n.s.DeleteBatch(conv)
}

// LastBatch returns the cost of the most recent DeleteBatch call.
func (n *Network) LastBatch() BatchCost {
	b := n.s.LastBatch()
	return BatchCost{
		Batch: b.Batch, Groups: b.Groups, Waves: b.Waves,
		Conflicts: b.Conflicts, Messages: b.Messages, Rounds: b.Rounds,
		ClaimAborted:     b.ClaimAborted,
		ElectionRounds:   b.ElectionRounds,
		SyncRounds:       b.SyncRounds,
		QueuedWords:      b.QueuedWords,
		MaxEdgeBacklog:   b.MaxEdgeBacklog,
		CongestionRounds: b.CongestionRounds,
	}
}

// LastRepair returns the cost of the most recent deletion's repair.
func (n *Network) LastRepair() RepairCost {
	r := n.s.LastRecovery()
	return RepairCost{
		Deleted:          NodeID(r.Deleted),
		DegreePrime:      r.DegreePrime,
		Messages:         r.Messages,
		Rounds:           r.Rounds,
		TotalWords:       r.TotalWords,
		MaxWords:         r.MaxWords,
		MaxSentByNode:    r.MaxSentByNode,
		BTvSize:          r.NsetSize,
		QueuedWords:      r.QueuedWords,
		MaxEdgeBacklog:   r.MaxEdgeBacklog,
		CongestionRounds: r.CongestionRounds,
		ElectionRounds:   r.ElectionRounds,
		SyncRounds:       r.SyncRounds,
		ElectionMessages: r.ElectionMessages,
		SyncMessages:     r.SyncMessages,
	}
}

// Alive reports whether v is in the network.
func (n *Network) Alive(v NodeID) bool { return n.s.Alive(graph.NodeID(v)) }

// NumAlive returns the live processor count.
func (n *Network) NumAlive() int { return n.s.NumAlive() }

// Nodes returns the live processors in ascending order.
func (n *Network) Nodes() []NodeID {
	live := n.s.LiveNodes()
	out := make([]NodeID, len(live))
	for i, v := range live {
		out[i] = NodeID(v)
	}
	return out
}

// Edges returns the current actual network's edges.
func (n *Network) Edges() []Edge {
	es := n.s.Physical().Edges()
	out := make([]Edge, len(es))
	for i, e := range es {
		out[i] = Edge{U: NodeID(e.U), V: NodeID(e.V)}
	}
	return out
}

// Degree returns v's degree in the actual network.
func (n *Network) Degree(v NodeID) int {
	return n.s.Physical().Degree(graph.NodeID(v))
}

// Distance returns the hop distance between live processors in the
// actual network, or -1 if unreachable.
func (n *Network) Distance(u, v NodeID) int {
	return n.s.Physical().Distance(graph.NodeID(u), graph.NodeID(v))
}

// Verify revalidates the entire distributed state from scratch (record
// consistency, haft validity, representatives, degree and connectivity
// invariants). A healthy network always returns nil.
func (n *Network) Verify() error { return n.s.Verify() }
