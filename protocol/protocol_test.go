package protocol

import (
	"math"
	"testing"
)

func star(n int) []Edge {
	edges := make([]Edge, n-1)
	for i := 1; i < n; i++ {
		edges[i-1] = Edge{U: 0, V: NodeID(i)}
	}
	return edges
}

func TestNewAndRepair(t *testing.T) {
	net, err := New(star(16))
	if err != nil {
		t.Fatal(err)
	}
	if net.NumAlive() != 16 {
		t.Fatalf("alive = %d", net.NumAlive())
	}
	if err := net.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
	rc := net.LastRepair()
	if rc.Deleted != 0 || rc.DegreePrime != 15 || rc.BTvSize != 15 {
		t.Fatalf("repair cost = %+v", rc)
	}
	if rc.Messages == 0 || rc.Rounds == 0 || rc.MaxWords == 0 {
		t.Fatalf("missing accounting: %+v", rc)
	}
	// Lemma 4 shape with a generous constant.
	if lim := 40 * 15 * math.Log2(16); float64(rc.Messages) > lim {
		t.Fatalf("messages %d > %v", rc.Messages, lim)
	}
}

func TestRejectsSelfLoop(t *testing.T) {
	if _, err := New([]Edge{{U: 1, V: 1}}); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestInsertAndAccessors(t *testing.T) {
	net, err := New([]Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Insert(9, []NodeID{0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := net.Delete(1); err != nil {
		t.Fatal(err)
	}
	if net.Alive(1) || !net.Alive(9) {
		t.Fatal("liveness wrong")
	}
	nodes := net.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("nodes = %v", nodes)
	}
	if d := net.Distance(0, 2); d < 1 || d > 2 {
		t.Fatalf("distance(0,2) = %d", d)
	}
	if net.Degree(9) < 2 {
		t.Fatalf("degree(9) = %d", net.Degree(9))
	}
	if len(net.Edges()) == 0 {
		t.Fatal("no edges")
	}
}

func TestParallelToggle(t *testing.T) {
	run := func(parallel bool) RepairCost {
		net, err := New(star(12))
		if err != nil {
			t.Fatal(err)
		}
		net.SetParallel(parallel)
		if err := net.Delete(0); err != nil {
			t.Fatal(err)
		}
		if err := net.Verify(); err != nil {
			t.Fatal(err)
		}
		return net.LastRepair()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("modes diverge: %+v vs %+v", a, b)
	}
}

func TestDeleteBatch(t *testing.T) {
	// Two stars joined by a long path: the two hubs damage disjoint
	// regions, so their repairs overlap in a single wave.
	var edges []Edge
	for i := 1; i < 8; i++ {
		edges = append(edges, Edge{U: 100, V: NodeID(100 + i)})
		edges = append(edges, Edge{U: 200, V: NodeID(200 + i)})
	}
	edges = append(edges, Edge{U: 101, V: 150}, Edge{U: 150, V: 151},
		Edge{U: 151, V: 152}, Edge{U: 152, V: 201})
	net, err := New(edges)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.DeleteBatch([]NodeID{100, 200}); err != nil {
		t.Fatal(err)
	}
	bc := net.LastBatch()
	if bc.Batch != 2 || bc.Groups != 2 || bc.Waves != 1 {
		t.Fatalf("batch cost = %+v, want 2 deletions in 2 groups, 1 wave", bc)
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
	// Colliding pair: a hub and its ray serialize into 2 waves.
	net2, err := New(star(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := net2.DeleteBatch([]NodeID{0, 1}); err != nil {
		t.Fatal(err)
	}
	if bc := net2.LastBatch(); bc.Groups != 1 || bc.Waves != 2 {
		t.Fatalf("hub+ray batch cost = %+v, want 1 group, 2 waves", bc)
	}
	if err := net2.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthFacade(t *testing.T) {
	// The same hub deletion under unlimited and B=1 bandwidth: the
	// healed graph must be identical, the congested run must report
	// congestion, and the unlimited one must not.
	free, err := New(star(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := free.Delete(0); err != nil {
		t.Fatal(err)
	}
	capped, err := New(star(16))
	if err != nil {
		t.Fatal(err)
	}
	capped.SetBandwidth(1)
	capped.SetSpread(false) // bursty mode: maximal backlog
	if err := capped.Delete(0); err != nil {
		t.Fatal(err)
	}

	rcFree, rcCapped := free.LastRepair(), capped.LastRepair()
	if rcFree.CongestionRounds != 0 || rcFree.QueuedWords != 0 {
		t.Fatalf("unlimited run reported congestion: %+v", rcFree)
	}
	if rcCapped.CongestionRounds == 0 || rcCapped.MaxEdgeBacklog == 0 {
		t.Fatalf("capped run reported no congestion: %+v", rcCapped)
	}
	if rcCapped.Messages != rcFree.Messages {
		t.Fatalf("messages diverge: %d capped vs %d free", rcCapped.Messages, rcFree.Messages)
	}
	if rcCapped.Rounds < rcFree.Rounds {
		t.Fatalf("capped run finished in fewer rounds: %d vs %d", rcCapped.Rounds, rcFree.Rounds)
	}
	a, b := free.Edges(), capped.Edges()
	if len(a) != len(b) {
		t.Fatalf("healed graphs diverge: %d vs %d edges", len(a), len(b))
	}
	if err := capped.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncFacade drives the streaming API end to end through the
// public surface: submit a mix of valid and invalid operations, tick
// under caller control, and drain typed events.
func TestAsyncFacade(t *testing.T) {
	net, err := New(star(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Submit(
		DeleteOp(3),
		InsertOp(100, 1, 2),
		DeleteOp(3), // dead by then: rejected
	); err != nil {
		t.Fatal(err)
	}
	if net.Idle() {
		t.Fatal("engine idle with a repair submitted")
	}
	if net.Run(1000) == 0 {
		t.Fatal("Run advanced zero rounds")
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	var repairs, inserts, rejects int
	for _, ev := range net.Poll() {
		switch ev.Kind {
		case EventRepairDone:
			repairs++
			if ev.V != 3 || ev.Repair.Messages == 0 || ev.Repair.BTvSize == 0 {
				t.Fatalf("repair event: %+v", ev)
			}
		case EventInsertApplied:
			inserts++
		case EventOpRejected:
			rejects++
			if ev.Err == nil || ev.Op.Kind != OpDelete {
				t.Fatalf("rejection event: %+v", ev)
			}
		}
	}
	if repairs != 1 || inserts != 1 || rejects != 1 {
		t.Fatalf("events: %d repairs, %d inserts, %d rejects", repairs, inserts, rejects)
	}
	// An installed observer replaces the Poll buffer entirely.
	var streamed int
	net.SetObserver(func(Event) { streamed++ })
	if err := net.Submit(DeleteOp(7)); err != nil {
		t.Fatal(err)
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if streamed == 0 {
		t.Fatal("observer saw no events")
	}
	if evs := net.Poll(); len(evs) != 0 {
		t.Fatalf("Poll delivered %d events despite an installed observer", len(evs))
	}
	net.SetObserver(nil)
	if !net.Alive(100) || net.Alive(3) {
		t.Fatal("final liveness wrong")
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
	// Blocking calls refuse a busy engine but work once drained.
	if err := net.Submit(DeleteOp(5)); err != nil {
		t.Fatal(err)
	}
	if err := net.Delete(6); err == nil {
		t.Fatal("blocking Delete accepted while engine busy")
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := net.Delete(6); err != nil {
		t.Fatal(err)
	}
}

// TestChanTransportFacade drives the full facade surface on the
// channel transport — blocking churn, the open-loop engine, events —
// and cross-checks the healed overlay against the simulator transport
// given the same operations.
func TestChanTransportFacade(t *testing.T) {
	run := func(kind TransportKind) *Network {
		net, err := NewWithTransport(star(12), kind)
		if err != nil {
			t.Fatal(err)
		}
		if got := net.Transport(); got != kind {
			t.Fatalf("Transport() = %v, want %v", got, kind)
		}
		if err := net.Insert(100, []NodeID{3, 5}); err != nil {
			t.Fatal(err)
		}
		if err := net.Delete(0); err != nil {
			t.Fatal(err)
		}
		if err := net.Submit(DeleteOp(3), DeleteOp(7)); err != nil {
			t.Fatal(err)
		}
		if err := net.Drain(); err != nil {
			t.Fatal(err)
		}
		repairs := 0
		for _, ev := range net.Poll() {
			if ev.Kind == EventRepairDone {
				repairs++
			}
		}
		if repairs != 2 {
			t.Fatalf("%v: %d async repairs, want 2", kind, repairs)
		}
		if err := net.DeleteBatch([]NodeID{5, 9}); err != nil {
			t.Fatal(err)
		}
		if err := net.Verify(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		return net
	}
	sim, chn := run(TransportSim), run(TransportChan)
	se, ce := sim.Edges(), chn.Edges()
	if len(se) != len(ce) {
		t.Fatalf("healed edge counts differ: sim %d, chan %d", len(se), len(ce))
	}
	for i := range se {
		if se[i] != ce[i] {
			t.Fatalf("healed edge %d differs: sim %v, chan %v", i, se[i], ce[i])
		}
	}
}

// TestParseTransport pins the command-line spellings.
func TestParseTransport(t *testing.T) {
	for s, want := range map[string]TransportKind{
		"sim": TransportSim, "simnet": TransportSim,
		"chan": TransportChan, "channel": TransportChan, "channet": TransportChan,
	} {
		got, err := ParseTransport(s)
		if err != nil || got != want {
			t.Fatalf("ParseTransport(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseTransport("udp"); err == nil {
		t.Fatal("unknown spelling must error")
	}
}
