// Package repro is a Go implementation of the Forgiving Graph (Hayes,
// Saia, Trehan: "The Forgiving Graph: a distributed data structure for
// low stretch under adversarial attack", PODC 2009).
//
// A Network is a self-healing overlay: an adversary repeatedly inserts
// nodes with arbitrary connections or deletes arbitrary nodes, and after
// every deletion the data structure adds a few edges so that, at all
// times,
//
//   - every pairwise distance is at most log₂(n) times what it would be
//     in the insertions-only graph G′ (Theorem 1.2), and
//   - every node's degree is at most a small constant times its degree
//     in G′ (Theorem 1.1; see DESIGN.md on the constant),
//
// while each repair costs only O(d log n) messages of size O(log n) and
// O(log d · log n) time for a deleted node of degree d (Theorem 1.3).
//
// The package is a facade over the reference engine in internal/core;
// the message-level distributed protocol lives in internal/dist and the
// experiment harness reproducing the paper's claims in internal/harness.
//
// # Quick start
//
//	net, err := repro.New([]repro.Edge{{0, 1}, {1, 2}, {2, 3}})
//	if err != nil { ... }
//	_ = net.Delete(1)               // adversary kills node 1
//	d := net.Distance(0, 2)         // still small: the repair spliced 0–2
//	r := net.StretchReport()        // audit the Theorem 1.2 bound
package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// NodeID identifies a node of the network. IDs are chosen by the caller
// and never reused after deletion.
type NodeID int64

// Edge is an undirected edge between two nodes.
type Edge struct {
	U, V NodeID
}

// Network is a self-healing Forgiving Graph overlay. It is not safe for
// concurrent use: the model is a strictly alternating sequence of
// adversarial operations and repairs.
type Network struct {
	e *core.Engine
}

// New builds a network from an initial edge list. Use NewWithNodes to
// start with isolated nodes as well; self-loops are rejected.
func New(edges []Edge) (*Network, error) {
	return NewWithNodes(nil, edges)
}

// NewWithNodes builds a network from isolated nodes plus an edge list
// (endpoints are added implicitly). Self-loops are rejected.
func NewWithNodes(nodes []NodeID, edges []Edge) (*Network, error) {
	g0 := graph.New()
	for _, v := range nodes {
		g0.AddNode(graph.NodeID(v))
	}
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("repro: self-loop on node %d", e.U)
		}
		g0.AddEdge(graph.NodeID(e.U), graph.NodeID(e.V))
	}
	return &Network{e: core.NewEngine(g0)}, nil
}

// Insert adds a node connected to the given live neighbors (possibly
// none), as an adversarial insertion: the edges join both the actual
// network and the yardstick graph G′.
func (n *Network) Insert(v NodeID, nbrs []NodeID) error {
	conv := make([]graph.NodeID, len(nbrs))
	for i, x := range nbrs {
		conv[i] = graph.NodeID(x)
	}
	return n.e.Insert(graph.NodeID(v), conv)
}

// Delete removes a live node and runs the Forgiving Graph repair.
func (n *Network) Delete(v NodeID) error {
	return n.e.Delete(graph.NodeID(v))
}

// Alive reports whether v is currently in the network.
func (n *Network) Alive(v NodeID) bool { return n.e.Alive(graph.NodeID(v)) }

// NumAlive returns the number of live nodes.
func (n *Network) NumAlive() int { return n.e.NumAlive() }

// NumEver returns |G′|: every node ever inserted, deleted or not. The
// stretch bound is log₂ of this quantity.
func (n *Network) NumEver() int { return n.e.NumEver() }

// Nodes returns the live nodes in ascending order.
func (n *Network) Nodes() []NodeID {
	live := n.e.LiveNodes()
	out := make([]NodeID, len(live))
	for i, v := range live {
		out[i] = NodeID(v)
	}
	return out
}

// Edges returns the current actual network's edges (direct edges plus
// the homomorphic image of the Reconstruction Trees), in canonical
// sorted order.
func (n *Network) Edges() []Edge {
	es := n.e.Physical().Edges()
	out := make([]Edge, len(es))
	for i, e := range es {
		out[i] = Edge{U: NodeID(e.U), V: NodeID(e.V)}
	}
	return out
}

// Neighbors returns v's neighbors in the actual network, ascending.
func (n *Network) Neighbors(v NodeID) []NodeID {
	nbrs := n.e.Physical().Neighbors(graph.NodeID(v))
	out := make([]NodeID, len(nbrs))
	for i, x := range nbrs {
		out[i] = NodeID(x)
	}
	return out
}

// Degree returns v's degree in the actual network (0 if absent).
func (n *Network) Degree(v NodeID) int {
	return n.e.Physical().Degree(graph.NodeID(v))
}

// DegreePrime returns v's degree in G′.
func (n *Network) DegreePrime(v NodeID) int {
	return n.e.DegreePrime(graph.NodeID(v))
}

// Distance returns the hop distance between two live nodes in the
// actual network, or -1 if unreachable.
func (n *Network) Distance(u, v NodeID) int {
	return n.e.Physical().Distance(graph.NodeID(u), graph.NodeID(v))
}

// DistancePrime returns the distance in G′ (deleted nodes count as
// usable intermediates, per the paper's metric), or -1 if unreachable.
func (n *Network) DistancePrime(u, v NodeID) int {
	return n.e.GPrime().Distance(graph.NodeID(u), graph.NodeID(v))
}

// StretchReport audits Theorem 1.2 exactly over all live pairs.
type StretchReport struct {
	// Max is the worst observed dist_G / dist_G′ ratio.
	Max float64
	// Bound is the guarantee log₂(NumEver).
	Bound float64
	// WorstU, WorstV attain Max.
	WorstU, WorstV NodeID
	// Pairs is the number of live pairs measured.
	Pairs int
	// Satisfied reports Max <= max(Bound, 1).
	Satisfied bool
}

// StretchReport measures the current worst-case stretch. It runs a BFS
// per live node; use it at experiment scale, not per-operation on huge
// networks.
func (n *Network) StretchReport() StretchReport {
	r := n.e.CheckStretch()
	return StretchReport{
		Max:       r.MaxStretch,
		Bound:     r.Bound,
		WorstU:    NodeID(r.WorstU),
		WorstV:    NodeID(r.WorstV),
		Pairs:     r.Pairs,
		Satisfied: r.Satisfied(),
	}
}

// DegreeReport audits Theorem 1.1.
type DegreeReport struct {
	// MaxRatio is the worst actual/G′ degree ratio over live nodes.
	MaxRatio float64
	// Worst attains MaxRatio.
	Worst NodeID
	// Over3 counts nodes above the paper's stated factor 3 (the hard
	// bound for the published algorithm is 4; see DESIGN.md).
	Over3 int
}

// DegreeReport measures the current degree amplification.
func (n *Network) DegreeReport() DegreeReport {
	r := n.e.CheckDegrees()
	return DegreeReport{MaxRatio: r.MaxRatio, Worst: NodeID(r.Worst), Over3: r.Over3}
}

// RepairStats describes the most recent deletion's repair.
type RepairStats struct {
	// RemovedNodes is how many virtual nodes vanished with the victim.
	RemovedNodes int
	// Components is how many pieces the repair merged.
	Components int
	// NewHelpers / DiscardedHelpers count helper churn.
	NewHelpers, DiscardedHelpers int
	// RTLeaves / RTDepth describe the resulting Reconstruction Tree.
	RTLeaves, RTDepth int
}

// LastRepair returns statistics about the most recent deletion.
func (n *Network) LastRepair() RepairStats {
	r := n.e.LastRepair()
	return RepairStats{
		RemovedNodes:     r.RemovedNodes,
		Components:       r.Components,
		NewHelpers:       r.NewHelpers,
		DiscardedHelpers: r.DiscardedHelpers,
		RTLeaves:         r.RTLeaves,
		RTDepth:          r.RTDepth,
	}
}

// CheckInvariants revalidates the engine's entire internal state (haft
// validity, representative bookkeeping, degree and connectivity
// invariants). It is an assertion for tests and long-running services;
// a healthy network always returns nil.
func (n *Network) CheckInvariants() error { return n.e.CheckInvariants() }
