package repro

import (
	"math/rand"
	"testing"
)

func TestNewAndBasicOps(t *testing.T) {
	net, err := New([]Edge{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumAlive() != 4 || net.NumEver() != 4 {
		t.Fatalf("alive=%d ever=%d", net.NumAlive(), net.NumEver())
	}
	if err := net.Delete(1); err != nil {
		t.Fatal(err)
	}
	if net.Alive(1) {
		t.Fatal("1 still alive")
	}
	if d := net.Distance(0, 2); d != 1 {
		t.Fatalf("distance(0,2) = %d, want 1 (repair splice)", d)
	}
	if d := net.DistancePrime(0, 2); d != 2 {
		t.Fatalf("distancePrime(0,2) = %d, want 2", d)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsSelfLoop(t *testing.T) {
	if _, err := New([]Edge{{3, 3}}); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestNewWithNodes(t *testing.T) {
	net, err := NewWithNodes([]NodeID{7}, []Edge{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !net.Alive(7) || net.NumAlive() != 3 {
		t.Fatal("isolated node missing")
	}
}

func TestInsertAndReports(t *testing.T) {
	net, err := New([]Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Insert(10, []NodeID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := net.Delete(0); err != nil {
		t.Fatal(err)
	}
	sr := net.StretchReport()
	if !sr.Satisfied {
		t.Fatalf("stretch report: %+v", sr)
	}
	if sr.Pairs != 10 { // C(5,2)
		t.Fatalf("pairs = %d, want 10", sr.Pairs)
	}
	dr := net.DegreeReport()
	if dr.MaxRatio > 4 {
		t.Fatalf("degree ratio %v > 4", dr.MaxRatio)
	}
	rs := net.LastRepair()
	if rs.RTLeaves != 4 || rs.NewHelpers != 3 {
		t.Fatalf("repair stats: %+v", rs)
	}
}

func TestAccessors(t *testing.T) {
	net, err := New([]Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Delete(1); err != nil {
		t.Fatal(err)
	}
	nodes := net.Nodes()
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 2 {
		t.Fatalf("nodes = %v", nodes)
	}
	edges := net.Edges()
	if len(edges) != 1 || edges[0] != (Edge{0, 2}) {
		t.Fatalf("edges = %v", edges)
	}
	if nbrs := net.Neighbors(0); len(nbrs) != 1 || nbrs[0] != 2 {
		t.Fatalf("neighbors(0) = %v", nbrs)
	}
	if net.Degree(0) != 1 || net.DegreePrime(0) != 1 {
		t.Fatalf("degrees: %d/%d", net.Degree(0), net.DegreePrime(0))
	}
}

func TestErrorsPropagate(t *testing.T) {
	net, err := New([]Edge{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Delete(42); err == nil {
		t.Fatal("unknown delete accepted")
	}
	if err := net.Insert(0, nil); err == nil {
		t.Fatal("id reuse accepted")
	}
	if err := net.Insert(5, []NodeID{99}); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
}

// End-to-end churn through the public API, bounds checked throughout.
func TestPublicAPIChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var edges []Edge
	for i := 1; i < 20; i++ {
		edges = append(edges, Edge{NodeID(rng.Intn(i)), NodeID(i)})
	}
	net, err := New(edges)
	if err != nil {
		t.Fatal(err)
	}
	next := NodeID(100)
	for step := 0; step < 30; step++ {
		nodes := net.Nodes()
		if len(nodes) < 2 {
			break
		}
		if rng.Float64() < 0.35 {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			nbrs := []NodeID{a}
			if b != a {
				nbrs = append(nbrs, b)
			}
			if err := net.Insert(next, nbrs); err != nil {
				t.Fatal(err)
			}
			next++
		} else {
			if err := net.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		}
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if sr := net.StretchReport(); !sr.Satisfied {
		t.Fatalf("final stretch: %+v", sr)
	}
}
